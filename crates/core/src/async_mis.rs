//! The Section 9 MIS variant: asynchronous starts, optional topology
//! knowledge.
//!
//! When processes wake at different rounds their epochs are not aligned; a
//! newly awake process must not knock out a neighbor that is about to join
//! the MIS. Two changes fix this (following the paper, which in turn follows
//! Moscibroda–Wattenhofer):
//!
//! 1. every epoch begins with a **listening phase** of `Θ(log² n)` silent
//!    rounds — receiving any message during it knocks the process back to a
//!    fresh epoch (with a fresh listening phase);
//! 2. a process that joins the MIS **announces forever** (probability 1/2
//!    every round), so late wakers still learn of it.
//!
//! Run with 0-complete detectors this solves MIS in the dual graph model; run
//! with [`AsyncFilter::AcceptAll`] it needs **no topology information** and
//! solves MIS in the classic model (`G = G'`), within `O(log³ n)` rounds of
//! each process's wake-up (Theorem 9.4) — a log factor slower than [15] in
//! exchange for a simpler structure, exactly the trade the paper makes.

use crate::messages::Wire;
use crate::mis::MisMsg;
use crate::params::{ceil_log2, MisParams};
use radio_sim::{Action, Context, Process, ProcessId};
use rand::Rng as _;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Message filtering mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AsyncFilter {
    /// Discard messages from processes outside the link detector set
    /// (requires a 0-complete detector; works in the dual graph model).
    Detector,
    /// Accept every message — no topology knowledge at all (sound in the
    /// classic model `G = G'`).
    AcceptAll,
}

/// Parameters of the asynchronous-start MIS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AsyncMisParams {
    /// Competition/announcement phase constants (as in the synchronous
    /// algorithm).
    pub mis: MisParams,
    /// Multiplier for the listening phase: `listen_factor · ⌈log₂ n⌉²`
    /// rounds.
    pub listen_factor: u32,
}

impl Default for AsyncMisParams {
    fn default() -> Self {
        AsyncMisParams {
            mis: MisParams::default(),
            listen_factor: 2,
        }
    }
}

impl AsyncMisParams {
    /// Listening-phase length in rounds (`Θ(log² n)`).
    pub fn listen_len(&self, n: usize) -> u64 {
        let l = u64::from(ceil_log2(n));
        u64::from(self.listen_factor) * l * l
    }

    /// Length of one undisturbed epoch: listening + competition phases +
    /// announcement.
    pub fn epoch_len(&self, n: usize) -> u64 {
        self.listen_len(n) + self.mis.epoch_len(n)
    }
}

/// The asynchronous-start MIS process.
///
/// Unlike the synchronous [`crate::Mis`], epochs are tracked by a private
/// counter that *resets* on knock-outs, and MIS members broadcast their
/// announcement forever.
#[derive(Debug, Clone)]
pub struct AsyncMis {
    n: usize,
    my_id: u32,
    params: AsyncMisParams,
    filter: AsyncFilter,
    listen_len: u64,
    phase_len: u64,
    comp_phases: u32,
    /// Position within the current epoch (resets on knock-out).
    epoch_pos: u64,
    output: Option<bool>,
    in_mis: bool,
    mis_set: BTreeSet<u32>,
}

impl AsyncMis {
    /// Creates an asynchronous-start MIS process.
    pub fn new(n: usize, my_id: ProcessId, params: AsyncMisParams, filter: AsyncFilter) -> Self {
        AsyncMis {
            n,
            my_id: my_id.get(),
            params,
            filter,
            listen_len: params.listen_len(n),
            phase_len: params.mis.phase_len(n),
            comp_phases: params.mis.competition_phases(n),
            epoch_pos: 0,
            output: None,
            in_mis: false,
            mis_set: BTreeSet::new(),
        }
    }

    /// Whether this process joined the MIS.
    pub fn in_mis(&self) -> bool {
        self.in_mis
    }

    /// Known MIS members (from announcements).
    pub fn mis_set(&self) -> &BTreeSet<u32> {
        &self.mis_set
    }

    /// The parameters this instance was built with.
    pub fn params(&self) -> AsyncMisParams {
        self.params
    }

    fn relevant(&self, ctx: &Context<'_>, from: u32) -> bool {
        match self.filter {
            AsyncFilter::Detector => ctx.detector.contains(&from),
            AsyncFilter::AcceptAll => true,
        }
    }

    /// Restart the epoch (knock-out): back to a fresh listening phase.
    fn restart(&mut self) {
        self.epoch_pos = 0;
    }
}

impl Process for AsyncMis {
    type Msg = Wire<MisMsg>;

    fn decide(&mut self, ctx: &mut Context<'_>) -> Action<Self::Msg> {
        // MIS members announce forever.
        if self.in_mis {
            if ctx.rng.gen_bool(self.params.mis.announce_prob()) {
                let m = MisMsg::Announce { from: self.my_id };
                let bits = m.encoded_bits(self.n);
                return Action::Broadcast(Wire::new(m, bits));
            }
            return Action::Idle;
        }
        // Processes that output 0 go silent.
        if self.output.is_some() {
            return Action::Idle;
        }
        let pos = self.epoch_pos;
        self.epoch_pos += 1;
        if pos < self.listen_len {
            return Action::Idle; // listening phase
        }
        let comp_pos = pos - self.listen_len;
        let phase_idx = (comp_pos / self.phase_len) as u32;
        if phase_idx < self.comp_phases {
            let p = (2f64.powi(phase_idx as i32) / self.n as f64).min(0.5);
            if ctx.rng.gen_bool(p) {
                let m = MisMsg::Contender { from: self.my_id };
                let bits = m.encoded_bits(self.n);
                return Action::Broadcast(Wire::new(m, bits));
            }
        } else {
            // Survived every competition phase: join the MIS.
            self.in_mis = true;
            self.output = Some(true);
            self.mis_set.insert(self.my_id);
            if ctx.rng.gen_bool(self.params.mis.announce_prob()) {
                let m = MisMsg::Announce { from: self.my_id };
                let bits = m.encoded_bits(self.n);
                return Action::Broadcast(Wire::new(m, bits));
            }
        }
        Action::Idle
    }

    fn receive(&mut self, ctx: &mut Context<'_>, msg: Option<&Self::Msg>) {
        let Some(wire) = msg else { return };
        let body = wire.body();
        if !self.relevant(ctx, body.from()) {
            return;
        }
        match *body {
            MisMsg::Contender { .. } => {
                if !self.in_mis && self.output.is_none() {
                    // Knocked out: start a new epoch with a fresh listening
                    // phase (this also covers receptions during listening).
                    self.restart();
                }
            }
            MisMsg::Announce { from } => {
                self.mis_set.insert(from);
                if !self.in_mis && self.output.is_none() {
                    self.output = Some(false);
                }
            }
        }
    }

    fn output(&self) -> Option<bool> {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::{DualGraph, EngineBuilder, Graph};

    fn check_valid_mis(g: &Graph, out: &[Option<bool>]) {
        assert!(out.iter().all(Option::is_some), "termination: {out:?}");
        for (u, v) in g.edges() {
            assert!(
                !(out[u] == Some(true) && out[v] == Some(true)),
                "independence violated on ({u}, {v})"
            );
        }
        for v in 0..g.n() {
            if out[v] == Some(false) {
                assert!(
                    g.neighbors(v).iter().any(|&u| out[u] == Some(true)),
                    "maximality violated at {v}"
                );
            }
        }
    }

    #[test]
    fn synchronous_start_still_works() {
        let g = Graph::from_edges(10, (0..9).map(|i| (i, i + 1))).unwrap();
        let net = DualGraph::classic(g.clone()).unwrap();
        let params = AsyncMisParams::default();
        let mut engine = EngineBuilder::new(net)
            .seed(2)
            .spawn(|info| AsyncMis::new(info.n, info.id, params, AsyncFilter::AcceptAll))
            .unwrap();
        engine.run(40 * params.epoch_len(10));
        check_valid_mis(&g, &engine.outputs());
    }

    #[test]
    fn staggered_wakeups_classic_model() {
        let g = Graph::from_edges(12, (0..11).map(|i| (i, i + 1))).unwrap();
        let net = DualGraph::classic(g.clone()).unwrap();
        let params = AsyncMisParams::default();
        // Adversarial-ish staggering: one process wakes every half epoch.
        let half = params.epoch_len(12) / 2;
        let wakes: Vec<u64> = (0..12).map(|i| 1 + i as u64 * half).collect();
        let mut engine = EngineBuilder::new(net)
            .seed(4)
            .wake_rounds(wakes)
            .spawn(|info| AsyncMis::new(info.n, info.id, params, AsyncFilter::AcceptAll))
            .unwrap();
        engine.run(200 * params.epoch_len(12));
        check_valid_mis(&g, &engine.outputs());
    }

    #[test]
    fn dual_graph_with_detector_filter() {
        let g = Graph::from_edges(10, (0..9).map(|i| (i, i + 1))).unwrap();
        let mut gp = g.clone();
        for i in 0..8 {
            gp.add_edge(i, i + 2);
        }
        let net = DualGraph::new(g.clone(), gp).unwrap();
        let params = AsyncMisParams::default();
        let wakes: Vec<u64> = (0..10).map(|i| 1 + (i as u64 % 3) * 500).collect();
        let mut engine = EngineBuilder::new(net)
            .seed(6)
            .wake_rounds(wakes)
            .adversary(radio_sim::adversary::AllUnreliable)
            .spawn(|info| AsyncMis::new(info.n, info.id, params, AsyncFilter::Detector))
            .unwrap();
        engine.run(400 * params.epoch_len(10));
        check_valid_mis(&g, &engine.outputs());
    }

    #[test]
    fn latency_is_measured_from_wake() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let net = DualGraph::classic(g).unwrap();
        let params = AsyncMisParams::default();
        let mut engine = EngineBuilder::new(net)
            .seed(8)
            .wake_rounds(vec![1, 50, 100, 150])
            .spawn(|info| AsyncMis::new(info.n, info.id, params, AsyncFilter::AcceptAll))
            .unwrap();
        engine.run(50_000);
        for v in 0..4 {
            let lat = engine.decided_latency(radio_sim::NodeId(v));
            assert!(lat.is_some());
        }
    }

    #[test]
    fn listen_len_is_log_squared() {
        let p = AsyncMisParams::default();
        assert_eq!(p.listen_len(256), u64::from(p.listen_factor) * 64);
    }
}
