//! # radio-structures — MIS and CCDS for unreliable radio networks
//!
//! A from-scratch implementation of the algorithms of *Structuring
//! Unreliable Radio Networks* (Censor-Hillel, Gilbert, Kuhn, Lynch,
//! Newport; PODC 2011) on top of the [`radio_sim`] dual-graph simulator:
//!
//! * [`Mis`] — the Section 4 maximal independent set algorithm:
//!   `O(log³ n)` rounds w.h.p. with 0-complete link detectors, robust to
//!   adversarially scheduled unreliable links.
//! * `Ccds` — the Section 5 connected dominating set with constant
//!   degree: `O(Δ·log²n/b + log³n)` rounds w.h.p., built from the MIS plus
//!   a banned-list path-finding procedure that connects MIS nodes within 3
//!   hops using only `O(1)` explorations per MIS node.
//! * `TauCcds` — the Section 6 variant for τ-complete detectors with
//!   `τ = O(1)`: iterated MIS plus exhaustive neighborhood exchange,
//!   `O(Δ·polylog n)` rounds (provably near-optimal; see the `hitting-games`
//!   crate for the Ω(Δ) lower bound of Section 7).
//! * `AsyncMis` — the Section 9 variant for asynchronous starts (and the
//!   classic model with no topology knowledge).
//! * `continuous` — the Section 8 continuous CCDS for dynamic link
//!   detectors.
//! * [`checker`] — referee-side verification of the Section 3 problem
//!   definitions, used by the test suite and the experiment harness.
//!
//! All Θ(·) constants from the paper's analysis are explicit in
//! [`params`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod checker;
pub mod messages;
mod mis;
pub mod params;

pub use mis::{Mis, MisCore, MisMsg};

mod ccds;

pub use ccds::{
    Ccds, CcdsConfig, CcdsCounters, CcdsMsg, Nomination, P3Stage, Schedule, ScheduleError,
    SearchSlot, Slot, HEADER_BITS,
};

mod tau;

pub use tau::{Assignment, TauCcds, TauConfig, TauMsg, TauParams, TauSchedule, TauSlot};

mod async_mis;
mod continuous;

pub use async_mis::{AsyncFilter, AsyncMis, AsyncMisParams};
pub use continuous::ContinuousCcds;

pub mod runner;

pub mod backbone;

mod repair;

pub use repair::RepairingCcds;
