//! The Section 4 MIS algorithm for the dual graph model.
//!
//! The execution is divided into `ℓ_E = Θ(log n)` *epochs*. At the start of
//! an epoch every process declares itself *active* unless its MIS set `M_u`
//! already contains its own id or a detector neighbor's id. An epoch has
//! `⌈log n⌉` *competition phases* of `ℓ_P = Θ(log n)` rounds: in phase `i`
//! active processes broadcast a contender message with probability
//! `2^{i-1}/n` (doubling each phase up to 1/2); receiving a contender from a
//! detector neighbor *knocks a process out* for the rest of the epoch. A
//! process that survives every competition phase joins the MIS (outputs 1)
//! and broadcasts an announcement with probability 1/2 throughout the final
//! *announcement phase*; processes receiving an announcement from a detector
//! neighbor record it in `M` and output 0.
//!
//! The point of the careful doubling-plus-knockout structure is robustness
//! to unreliable links: the analysis (Lemma 4.3) never relies on a message
//! being delivered over an edge the adversary controls — it relies on a
//! process broadcasting *alone* within `G'` interference range, which the
//! adversary cannot prevent.
//!
//! Theorem 4.6: with 0-complete link detectors this solves the MIS problem
//! in `O(log³ n)` rounds, w.h.p.

use crate::messages::Wire;
use crate::params::{id_bits, MisParams};
use radio_sim::{Action, Context, Process, ProcessId};
use rand::Rng as _;
use std::collections::BTreeSet;

/// MIS protocol messages. Senders always label messages with their id; the
/// algorithm discards receptions from processes outside the link detector
/// set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MisMsg {
    /// "I am competing" — knocks out active detector neighbors.
    Contender {
        /// Sender's process id.
        from: u32,
    },
    /// "I joined the MIS" — covered detector neighbors output 0.
    Announce {
        /// Sender's process id.
        from: u32,
    },
}

impl MisMsg {
    /// Sender's id, whichever variant.
    pub fn from(&self) -> u32 {
        match *self {
            MisMsg::Contender { from } | MisMsg::Announce { from } => from,
        }
    }

    /// Encoded size: one id plus a one-bit tag.
    pub fn encoded_bits(&self, n: usize) -> u64 {
        id_bits(n) + 1
    }
}

/// The MIS state machine, independent of the wire message type so the CCDS
/// algorithm (whose message enum embeds [`MisMsg`]) can drive it directly.
///
/// Standalone use goes through [`Mis`], the [`Process`] wrapper.
#[derive(Debug, Clone)]
pub struct MisCore {
    n: usize,
    my_id: u32,
    params: MisParams,
    phase_len: u64,
    comp_phases: u32,
    epoch_len: u64,
    total: u64,
    mis_set: BTreeSet<u32>,
    output: Option<bool>,
    active: bool,
    in_mis: bool,
    announce_prob: f64,
}

impl MisCore {
    /// Creates the state machine for a process with the given id in a
    /// network of size `n`.
    pub fn new(n: usize, my_id: ProcessId, params: MisParams) -> Self {
        MisCore {
            n,
            my_id: my_id.get(),
            params,
            phase_len: params.phase_len(n),
            comp_phases: params.competition_phases(n),
            epoch_len: params.epoch_len(n),
            total: params.total_rounds(n),
            mis_set: BTreeSet::new(),
            output: None,
            active: false,
            in_mis: false,
            announce_prob: params.announce_prob(),
        }
    }

    /// Creates a state machine whose MIS outcome is already decided — used
    /// by wrappers (e.g. the Section 8 repair prototype) that re-run the
    /// CCDS search stage on top of an established MIS.
    pub fn pre_decided(
        n: usize,
        my_id: ProcessId,
        params: MisParams,
        in_mis: bool,
        mis_set: BTreeSet<u32>,
    ) -> Self {
        let mut core = Self::new(n, my_id, params);
        core.in_mis = in_mis;
        core.output = Some(in_mis);
        core.mis_set = mis_set;
        if in_mis {
            core.mis_set.insert(core.my_id);
        }
        core
    }

    /// Total rounds the algorithm runs (`O(log³ n)`).
    pub fn total_rounds(&self) -> u64 {
        self.total
    }

    /// One round of the protocol. `r0` is the 0-based round index since the
    /// algorithm started; returns the message to broadcast, if any.
    pub fn step(&mut self, ctx: &mut Context<'_>, r0: u64) -> Option<MisMsg> {
        if r0 >= self.total {
            return None;
        }
        // MIS members announce perpetually (every round, probability
        // `announce_prob`). The Section 4 text announces only during the
        // joining epoch's announcement phase; that leaves a neighbor that
        // misses the one announcement free to win the next epoch unopposed
        // (its MIS neighbor is silent during competition phases). The
        // paper's own Section 9 variant switches to announcing "for the
        // remainder of the execution", which closes the gap; we adopt it
        // here for all starts. See DESIGN.md's deviations table.
        if self.in_mis {
            if ctx.rng.gen_bool(self.announce_prob) {
                return Some(MisMsg::Announce { from: self.my_id });
            }
            return None;
        }
        let epoch_pos = r0 % self.epoch_len;
        if epoch_pos == 0 {
            self.active = self.output.is_none()
                && !self.mis_set.contains(&self.my_id)
                && self.mis_set.iter().all(|id| !ctx.detector.contains(id));
        }
        if !self.active {
            return None;
        }
        let phase_idx = (epoch_pos / self.phase_len) as u32;
        if phase_idx < self.comp_phases {
            // Competition: probability doubles each phase, 1/n up to 1/2.
            let p = (2f64.powi(phase_idx as i32) / self.n as f64).min(0.5);
            if ctx.rng.gen_bool(p) {
                return Some(MisMsg::Contender { from: self.my_id });
            }
        } else if self.output.is_none() {
            // Announcement phase: survivors join the MIS and announce (the
            // perpetual-announcement branch above takes over from the next
            // round on). Outputs are irrevocable: a process covered earlier
            // this epoch never reaches this branch.
            self.in_mis = true;
            self.output = Some(true);
            self.mis_set.insert(self.my_id);
            if ctx.rng.gen_bool(self.announce_prob) {
                return Some(MisMsg::Announce { from: self.my_id });
            }
        }
        None
    }

    /// Handles a received MIS message. Messages from processes outside the
    /// detector set are discarded, per the algorithm.
    pub fn on_message(&mut self, ctx: &Context<'_>, msg: &MisMsg) {
        if !ctx.detector.contains(&msg.from()) {
            return;
        }
        match *msg {
            MisMsg::Contender { .. } => {
                if self.active && !self.in_mis {
                    self.active = false; // knocked out for this epoch
                }
            }
            MisMsg::Announce { from } => {
                self.mis_set.insert(from);
                if !self.in_mis && self.output.is_none() {
                    // Covered: output 0 and stop competing immediately (a
                    // covered process must not survive the rest of the
                    // epoch and join).
                    self.output = Some(false);
                    self.active = false;
                }
            }
        }
    }

    /// The process's MIS output, once decided.
    pub fn output(&self) -> Option<bool> {
        self.output
    }

    /// Whether this process joined the MIS.
    pub fn in_mis(&self) -> bool {
        self.in_mis
    }

    /// The MIS set `M_u`: ids of known MIS processes (all detector
    /// neighbors, plus the process itself if it joined).
    pub fn mis_set(&self) -> &BTreeSet<u32> {
        &self.mis_set
    }

    /// The network size this instance was built for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// This process's id.
    pub fn my_id(&self) -> u32 {
        self.my_id
    }

    /// The parameters this instance was built with.
    pub fn params(&self) -> MisParams {
        self.params
    }
}

/// The standalone MIS algorithm as an engine [`Process`].
///
/// # Examples
///
/// ```
/// use radio_structures::{Mis, params::MisParams};
/// use radio_sim::{EngineBuilder, DualGraph, Graph, Process};
///
/// let net = DualGraph::classic(Graph::complete(8))?;
/// let params = MisParams::default();
/// let mut engine = EngineBuilder::new(net)
///     .seed(3)
///     .spawn(|info| Mis::new(info.n, info.id, params))?;
/// let budget = params.total_rounds(8);
/// engine.run(budget);
/// // In a clique, exactly one process should win.
/// let winners = engine.procs().iter().filter(|p| p.core().in_mis()).count();
/// assert_eq!(winners, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mis {
    core: MisCore,
}

impl Mis {
    /// Creates an MIS process for a network of size `n`.
    pub fn new(n: usize, my_id: ProcessId, params: MisParams) -> Self {
        Mis {
            core: MisCore::new(n, my_id, params),
        }
    }

    /// Read access to the underlying state machine.
    pub fn core(&self) -> &MisCore {
        &self.core
    }
}

impl Process for Mis {
    type Msg = Wire<MisMsg>;

    fn decide(&mut self, ctx: &mut Context<'_>) -> Action<Self::Msg> {
        let r0 = ctx.local_round - 1;
        match self.core.step(ctx, r0) {
            Some(msg) => {
                let bits = msg.encoded_bits(self.core.n);
                Action::Broadcast(Wire::new(msg, bits))
            }
            None => Action::Idle,
        }
    }

    fn receive(&mut self, ctx: &mut Context<'_>, msg: Option<&Self::Msg>) {
        if let Some(wire) = msg {
            self.core.on_message(ctx, wire.body());
        }
    }

    fn output(&self) -> Option<bool> {
        self.core.output()
    }

    /// The algorithm has a fixed-length schedule; a process is done when it
    /// has an output (w.h.p. before the schedule ends).
    fn is_done(&self) -> bool {
        self.core.output().is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::adversary::{AllUnreliable, Collider};
    use radio_sim::{DualGraph, EngineBuilder, Graph};

    fn run_mis(net: &DualGraph, seed: u64) -> Vec<Option<bool>> {
        let params = MisParams::default();
        let n = net.n();
        let mut engine = EngineBuilder::new(net.clone())
            .seed(seed)
            .spawn(|info| Mis::new(info.n, info.id, params))
            .unwrap();
        engine.run(params.total_rounds(n));
        engine.outputs()
    }

    #[test]
    fn clique_elects_exactly_one() {
        let net = DualGraph::classic(Graph::complete(12)).unwrap();
        let out = run_mis(&net, 1);
        assert_eq!(out.iter().filter(|o| **o == Some(true)).count(), 1);
        assert!(out.iter().all(Option::is_some));
    }

    #[test]
    fn path_alternates_legally() {
        let g = Graph::from_edges(10, (0..9).map(|i| (i, i + 1))).unwrap();
        let net = DualGraph::classic(g).unwrap();
        let out = run_mis(&net, 2);
        // Independence: no two adjacent 1s. Maximality: every 0 has a 1
        // neighbor. Termination: all decided.
        assert!(out.iter().all(Option::is_some));
        for (u, v) in net.g().edges() {
            assert!(!(out[u] == Some(true) && out[v] == Some(true)));
        }
        for v in 0..10 {
            if out[v] == Some(false) {
                assert!(net.g().neighbors(v).iter().any(|&u| out[u] == Some(true)));
            }
        }
    }

    #[test]
    fn survives_unreliable_adversaries() {
        // Path in G plus long-range unreliable chords the adversary always
        // activates (maximum interference).
        let g = Graph::from_edges(12, (0..11).map(|i| (i, i + 1))).unwrap();
        let mut gp = g.clone();
        for i in 0..10 {
            gp.add_edge(i, i + 2);
        }
        let net = DualGraph::new(g, gp).unwrap();
        let params = MisParams::default();
        for adversary in 0..2 {
            let mut builder = EngineBuilder::new(net.clone()).seed(77);
            builder = if adversary == 0 {
                builder.adversary(AllUnreliable)
            } else {
                builder.adversary(Collider)
            };
            let mut engine = builder
                .spawn(|info| Mis::new(info.n, info.id, params))
                .unwrap();
            engine.run(params.total_rounds(12));
            let out = engine.outputs();
            assert!(out.iter().all(Option::is_some), "termination failed");
            for (u, v) in net.g().edges() {
                assert!(!(out[u] == Some(true) && out[v] == Some(true)));
            }
            for v in 0..12 {
                if out[v] == Some(false) {
                    assert!(net.g().neighbors(v).iter().any(|&u| out[u] == Some(true)));
                }
            }
        }
    }

    #[test]
    fn message_sizes_are_logarithmic() {
        let msg = MisMsg::Contender { from: 3 };
        assert_eq!(msg.encoded_bits(256), 10); // 9 id bits + tag
        assert_eq!(msg.from(), 3);
        let ann = MisMsg::Announce { from: 9 };
        assert_eq!(ann.from(), 9);
    }

    #[test]
    fn knocked_out_process_stays_quiet_within_epoch() {
        // Direct state-machine test: drive two cores by hand.
        use rand::SeedableRng;
        let params = MisParams::default();
        let mut core = MisCore::new(4, ProcessId::new(1).unwrap(), params);
        let mut rng = radio_sim::ProcessRng::seed_from_u64(5);
        let detector: std::collections::BTreeSet<u32> = [2u32].into();
        let mut ctx = Context {
            local_round: 1,
            n: 4,
            my_id: ProcessId::new(1).unwrap(),
            detector: &detector,
            rng: &mut rng,
        };
        // Round 0 activates the process.
        let _ = core.step(&mut ctx, 0);
        assert!(core.output().is_none());
        // A contender from a detector neighbor knocks it out...
        core.on_message(&ctx, &MisMsg::Contender { from: 2 });
        // ...after which it never broadcasts for the rest of the epoch.
        for r0 in 1..core.params_epoch_len_for_test() {
            assert!(core.step(&mut ctx, r0).is_none());
        }
    }

    impl MisCore {
        fn params_epoch_len_for_test(&self) -> u64 {
            self.epoch_len
        }
    }

    #[test]
    fn announce_from_non_detector_is_discarded() {
        use rand::SeedableRng;
        let params = MisParams::default();
        let mut core = MisCore::new(4, ProcessId::new(1).unwrap(), params);
        let mut rng = radio_sim::ProcessRng::seed_from_u64(5);
        let detector: std::collections::BTreeSet<u32> = [2u32].into();
        let ctx = Context {
            local_round: 1,
            n: 4,
            my_id: ProcessId::new(1).unwrap(),
            detector: &detector,
            rng: &mut rng,
        };
        core.on_message(&ctx, &MisMsg::Announce { from: 3 });
        assert!(core.output().is_none());
        core.on_message(&ctx, &MisMsg::Announce { from: 2 });
        assert_eq!(core.output(), Some(false));
    }
}
