//! The fixed global schedule of the CCDS algorithm.
//!
//! Everything in Section 5 is built from fixed-length phases agreed on by
//! all processes (synchronous starts make this possible): the MIS prefix,
//! then `ℓ_SE` search epochs, each consisting of
//!
//! 1. **Phase 1** — banned-list dissemination: `C` windows of `ℓ_BB` rounds,
//!    where `C` is the worst-case number of `b`-bit chunks a banned-list
//!    diff needs (`C = O(Δ·log n / b)`, the source of the `Δ·log²n/b` term);
//! 2. **Phase 2** — directed-decay nominations: `⌈log n⌉` doubling phases of
//!    `ℓ_DD` rounds, each followed by a stop-order window of `ℓ_BB` rounds;
//! 3. **Phase 3** — exploration: a select window, an explore window, then
//!    `C` reply windows and `C` relay windows, each `ℓ_BB` rounds.
//!
//! [`Schedule::slot`] maps a 0-based round index to its position; processes
//! derive all state-machine transitions from it.

use crate::params::{ceil_log2, id_bits, CcdsParams};
use serde::{Deserialize, Serialize};

/// Static description of the CCDS round layout for one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Rounds of the MIS prefix.
    pub mis_total: u64,
    /// Rounds per bounded-broadcast window (`ℓ_BB`).
    pub bb_len: u64,
    /// Rounds per directed-decay contention phase (`ℓ_DD`).
    pub dd_len: u64,
    /// Number of directed-decay phases (`⌈log₂ n⌉`).
    pub dd_phases: u32,
    /// Banned-list/reply chunk windows per epoch (`C`).
    pub chunk_windows: u64,
    /// Ids per chunk (dictated by the message bound `b`).
    pub chunk_capacity: usize,
    /// Phase 1 length in rounds.
    pub p1_len: u64,
    /// Phase 2 length in rounds.
    pub p2_len: u64,
    /// Phase 3 length in rounds.
    pub p3_len: u64,
    /// One search epoch in rounds.
    pub epoch_len: u64,
    /// Number of search epochs (`ℓ_SE`).
    pub search_epochs: u64,
    /// Total schedule length in rounds.
    pub total: u64,
}

/// Errors computing a [`Schedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The message bound `b` cannot fit even a one-id chunk
    /// (`b < header + 5·id_bits` for this `n`).
    MessageBoundTooSmall {
        /// The offending bound.
        b: u64,
        /// The minimum workable bound for this `n`.
        min: u64,
    },
}

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::MessageBoundTooSmall { b, min } => {
                write!(f, "message bound b = {b} bits is below the minimum {min}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Fixed per-message header overhead in bits (tag + sequencing).
pub const HEADER_BITS: u64 = 19;

impl Schedule {
    /// Computes the schedule for network size `n`, degree bound
    /// `delta_bound` (the paper's implicitly known `Δ`), and message bound
    /// `b` bits.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::MessageBoundTooSmall`] if `b` cannot carry a
    /// single id after headers (the paper assumes `b = Ω(log n)`).
    pub fn compute(
        n: usize,
        delta_bound: usize,
        b: u64,
        params: &CcdsParams,
    ) -> Result<Self, ScheduleError> {
        let idb = id_bits(n);
        // Worst fixed overhead across chunked messages: header plus four
        // address/label ids (origin, via, mis, from).
        let overhead = HEADER_BITS + 4 * idb;
        if b < overhead + idb {
            return Err(ScheduleError::MessageBoundTooSmall {
                b,
                min: overhead + idb,
            });
        }
        let chunk_capacity = ((b - overhead) / idb) as usize;
        let max_ids = delta_bound as u64 + 1; // a diff or a neighborhood: ≤ Δ+1 ids
        let chunk_windows = max_ids.div_ceil(chunk_capacity as u64).max(1);
        let bb_len = params.bb_len(n);
        let dd_len = params.dd_len(n);
        let dd_phases = ceil_log2(n);
        let p1_len = chunk_windows * bb_len;
        let p2_len = u64::from(dd_phases) * (dd_len + bb_len);
        let p3_len = (2 + 2 * chunk_windows) * bb_len;
        let epoch_len = p1_len + p2_len + p3_len;
        let search_epochs = u64::from(params.search_epochs);
        let mis_total = params.mis.total_rounds(n);
        Ok(Schedule {
            mis_total,
            bb_len,
            dd_len,
            dd_phases,
            chunk_windows,
            chunk_capacity,
            p1_len,
            p2_len,
            p3_len,
            epoch_len,
            search_epochs,
            total: mis_total + search_epochs * epoch_len,
        })
    }

    /// A variant of [`Schedule::compute`] with **no MIS prefix**: the
    /// search epochs start at round 0. Used by the Section 8 repair
    /// prototype, which keeps an already-built MIS and re-runs only the
    /// path-finding stage.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::MessageBoundTooSmall`] under the same
    /// condition as [`Schedule::compute`].
    pub fn compute_search_only(
        n: usize,
        delta_bound: usize,
        b: u64,
        params: &CcdsParams,
    ) -> Result<Self, ScheduleError> {
        let mut s = Self::compute(n, delta_bound, b, params)?;
        s.total -= s.mis_total;
        s.mis_total = 0;
        Ok(s)
    }

    /// Maps a 0-based round index to its slot.
    pub fn slot(&self, r0: u64) -> Slot {
        if r0 < self.mis_total {
            return Slot::Mis { r0 };
        }
        let s = r0 - self.mis_total;
        if s >= self.search_epochs * self.epoch_len {
            return Slot::Done {
                first: s == self.search_epochs * self.epoch_len,
            };
        }
        let epoch = (s / self.epoch_len) as u32;
        let e = s % self.epoch_len;
        if e < self.p1_len {
            return Slot::Search {
                epoch,
                epoch_start: e == 0,
                phase: SearchSlot::P1 {
                    window: e / self.bb_len,
                    round: e % self.bb_len,
                },
            };
        }
        let e2 = e - self.p1_len;
        if e2 < self.p2_len {
            let unit = self.dd_len + self.bb_len;
            let decay_phase = (e2 / unit) as u32;
            let u = e2 % unit;
            let phase = if u < self.dd_len {
                SearchSlot::P2Contention {
                    decay_phase,
                    round: u,
                }
            } else {
                SearchSlot::P2Stop {
                    decay_phase,
                    round: u - self.dd_len,
                }
            };
            return Slot::Search {
                epoch,
                epoch_start: false,
                phase,
            };
        }
        let e3 = e2 - self.p2_len;
        let window = e3 / self.bb_len;
        let round = e3 % self.bb_len;
        let stage = if window == 0 {
            P3Stage::Select
        } else if window == 1 {
            P3Stage::Explore
        } else if window < 2 + self.chunk_windows {
            P3Stage::Reply { chunk: window - 2 }
        } else {
            P3Stage::Relay {
                chunk: window - 2 - self.chunk_windows,
            }
        };
        Slot::Search {
            epoch,
            epoch_start: false,
            phase: SearchSlot::P3 { stage, round },
        }
    }
}

/// A round's position in the CCDS schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// Inside the MIS prefix (`r0` is the round index within it).
    Mis {
        /// 0-based round index within the MIS prefix.
        r0: u64,
    },
    /// Inside search epoch `epoch`.
    Search {
        /// Epoch index, `0..ℓ_SE`.
        epoch: u32,
        /// Whether this is the epoch's first round.
        epoch_start: bool,
        /// Fine-grained position.
        phase: SearchSlot,
    },
    /// Past the end of the schedule.
    Done {
        /// Whether this is the first post-schedule round.
        first: bool,
    },
}

/// Position within a search epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchSlot {
    /// Phase 1, banned-list chunk dissemination.
    P1 {
        /// Chunk window index, `0..chunk_windows`.
        window: u64,
        /// Round within the window, `0..ℓ_BB`.
        round: u64,
    },
    /// Phase 2, directed-decay contention rounds.
    P2Contention {
        /// Decay phase index, `0..⌈log₂ n⌉`.
        decay_phase: u32,
        /// Round within the phase, `0..ℓ_DD`.
        round: u64,
    },
    /// Phase 2, stop-order window after a decay phase.
    P2Stop {
        /// The decay phase this window follows.
        decay_phase: u32,
        /// Round within the window, `0..ℓ_BB`.
        round: u64,
    },
    /// Phase 3, exploration.
    P3 {
        /// Which exploration stage.
        stage: P3Stage,
        /// Round within the stage's window, `0..ℓ_BB`.
        round: u64,
    },
}

/// Stages of phase 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum P3Stage {
    /// MIS node tells its chosen nominator it was selected.
    Select,
    /// The nominator queries the nominated process.
    Explore,
    /// The nominated process answers, chunk by chunk.
    Reply {
        /// Chunk index, `0..chunk_windows`.
        chunk: u64,
    },
    /// The nominator relays the answer to the MIS node, chunk by chunk.
    Relay {
        /// Chunk index, `0..chunk_windows`.
        chunk: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> Schedule {
        Schedule::compute(64, 10, 256, &CcdsParams::default()).unwrap()
    }

    #[test]
    fn slots_partition_the_timeline() {
        let s = schedule();
        // Every round maps to exactly one slot, in order, with the phase
        // lengths adding up.
        assert_eq!(s.epoch_len, s.p1_len + s.p2_len + s.p3_len);
        assert_eq!(s.total, s.mis_total + s.search_epochs * s.epoch_len);
        assert!(matches!(s.slot(0), Slot::Mis { r0: 0 }));
        assert!(matches!(s.slot(s.mis_total - 1), Slot::Mis { .. }));
        match s.slot(s.mis_total) {
            Slot::Search {
                epoch: 0,
                epoch_start: true,
                phase:
                    SearchSlot::P1 {
                        window: 0,
                        round: 0,
                    },
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
        assert!(matches!(s.slot(s.total), Slot::Done { first: true }));
        assert!(matches!(s.slot(s.total + 5), Slot::Done { first: false }));
    }

    #[test]
    fn phase_boundaries() {
        let s = schedule();
        let base = s.mis_total;
        // Last round of P1.
        match s.slot(base + s.p1_len - 1) {
            Slot::Search {
                phase: SearchSlot::P1 { window, round },
                ..
            } => {
                assert_eq!(window, s.chunk_windows - 1);
                assert_eq!(round, s.bb_len - 1);
            }
            other => panic!("unexpected: {other:?}"),
        }
        // First round of P2.
        match s.slot(base + s.p1_len) {
            Slot::Search {
                phase:
                    SearchSlot::P2Contention {
                        decay_phase: 0,
                        round: 0,
                    },
                ..
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
        // First stop window.
        match s.slot(base + s.p1_len + s.dd_len) {
            Slot::Search {
                phase:
                    SearchSlot::P2Stop {
                        decay_phase: 0,
                        round: 0,
                    },
                ..
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
        // First round of P3 = select.
        match s.slot(base + s.p1_len + s.p2_len) {
            Slot::Search {
                phase:
                    SearchSlot::P3 {
                        stage: P3Stage::Select,
                        round: 0,
                    },
                ..
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
        // Reply and relay windows.
        match s.slot(base + s.p1_len + s.p2_len + 2 * s.bb_len) {
            Slot::Search {
                phase:
                    SearchSlot::P3 {
                        stage: P3Stage::Reply { chunk: 0 },
                        ..
                    },
                ..
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
        match s.slot(base + s.p1_len + s.p2_len + (2 + s.chunk_windows) * s.bb_len) {
            Slot::Search {
                phase:
                    SearchSlot::P3 {
                        stage: P3Stage::Relay { chunk: 0 },
                        ..
                    },
                ..
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn second_epoch_starts_cleanly() {
        let s = schedule();
        match s.slot(s.mis_total + s.epoch_len) {
            Slot::Search {
                epoch: 1,
                epoch_start: true,
                ..
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn small_b_needs_more_windows() {
        let params = CcdsParams::default();
        let small = Schedule::compute(64, 40, 64, &params).unwrap();
        let large = Schedule::compute(64, 40, 4096, &params).unwrap();
        assert!(small.chunk_windows > large.chunk_windows);
        assert_eq!(large.chunk_windows, 1);
        assert!(small.total > large.total);
    }

    #[test]
    fn rejects_tiny_b() {
        let params = CcdsParams::default();
        let err = Schedule::compute(1 << 20, 10, 30, &params).unwrap_err();
        assert!(matches!(err, ScheduleError::MessageBoundTooSmall { .. }));
    }

    #[test]
    fn chunk_capacity_respects_b() {
        let s = Schedule::compute(256, 100, 128, &CcdsParams::default()).unwrap();
        let idb = id_bits(256);
        assert_eq!(s.chunk_capacity as u64, (128 - HEADER_BITS - 4 * idb) / idb);
    }
}
