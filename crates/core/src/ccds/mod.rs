//! The Section 5 CCDS algorithm: MIS plus banned-list path finding.
//!
//! After building an MIS (every MIS node joins the CCDS), the algorithm
//! connects every pair of MIS nodes within 3 hops in `G` by a path of CCDS
//! nodes. The naive approach explores through each of a node's `Δ`
//! neighbors; this algorithm instead keeps, at each MIS node `u`, a **banned
//! list** `B_u` of processes known to lead only to already-discovered MIS
//! nodes (`u` itself, its neighbors, every discovered MIS node and its
//! neighbors). Covered neighbors then nominate only non-banned processes, so
//! each search epoch discovers a *new* MIS node whenever one remains —
//! `O(1)` explorations total per MIS node instead of `O(Δ)` (there are only
//! `O(1)` MIS nodes within 3 hops, by the density Corollary 4.7).
//!
//! The price is shipping `B_u` to the neighbors: `O(Δ·log n)` bits, i.e.
//! `O(Δ·log n / b)` bounded-broadcast calls of `Θ(log n)` rounds each —
//! the `O(Δ·log²n/b)` term of Theorem 5.3. For `b = Ω(Δ·log n)` the whole
//! algorithm is polylogarithmic.
//!
//! Subroutines (proved as Lemmas 5.1 and 5.2):
//!
//! * `bounded-broadcast(δ, m)` — broadcast `m` with probability 1/2 for
//!   `ℓ_BB(δ) = Θ(2^δ·log n)` rounds; delivers to all `G`-neighbors w.h.p.
//!   provided at most `δ` nearby processes run it concurrently.
//! * `directed-decay` — covered processes simulate one sender per message
//!   (destination an MIS neighbor), doubling broadcast probability from
//!   `1/n` to `1/2` across `⌈log n⌉` phases; after each phase MIS processes
//!   that heard something issue stop orders. Every MIS process with a
//!   nonempty covered set hears at least one message w.h.p.

mod schedule;

pub use schedule::{P3Stage, Schedule, ScheduleError, SearchSlot, Slot, HEADER_BITS};

use crate::messages::Wire;
use crate::mis::{MisCore, MisMsg};
use crate::params::{id_bits, CcdsParams};
use radio_sim::{Action, Context, Process, ProcessId};
use rand::Rng as _;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Static configuration shared by all CCDS processes.
///
/// Every process must be constructed from the *same* configuration: the
/// schedule is globally agreed, which is how the paper's fixed-length phases
/// work (it assumes `n`, a degree bound `Δ`, and the message bound `b` are
/// common knowledge).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CcdsConfig {
    /// Network size `n`.
    pub n: usize,
    /// Known upper bound on the reliable max degree `Δ`.
    pub delta_bound: usize,
    /// Message size bound `b` in bits.
    pub b: u64,
    /// Phase-length constants.
    pub params: CcdsParams,
}

impl CcdsConfig {
    /// A configuration with default parameters.
    pub fn new(n: usize, delta_bound: usize, b: u64) -> Self {
        CcdsConfig {
            n,
            delta_bound,
            b,
            params: CcdsParams::default(),
        }
    }

    /// Computes the global schedule.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if `b` is too small to carry one id.
    pub fn schedule(&self) -> Result<Schedule, ScheduleError> {
        Schedule::compute(self.n, self.delta_bound, self.b, &self.params)
    }
}

/// One nomination entry inside a directed-decay message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Nomination {
    /// The MIS process this nomination is addressed to.
    pub dest: u32,
    /// The nominated (non-banned) neighbor.
    pub nominee: u32,
}

/// CCDS wire messages. All are labeled with the sender id (`from`), and
/// receptions from outside the link detector set are discarded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcdsMsg {
    /// MIS-prefix traffic.
    Mis(MisMsg),
    /// Phase 1: a banned-list chunk from MIS process `from`.
    Banned {
        /// Sending MIS process.
        from: u32,
        /// Chunk of banned ids.
        ids: Vec<u32>,
    },
    /// Phase 2: combined nominations from covered process `from`
    /// (directed-decay simulated senders that fired this round).
    Nominate {
        /// Sending covered process.
        from: u32,
        /// The nominations that fired.
        entries: Vec<Nomination>,
    },
    /// Phase 2: stop order from MIS process `from`.
    Stop {
        /// Sending MIS process.
        from: u32,
    },
    /// Phase 3: MIS process `from` selects `nominator`'s nomination.
    Select {
        /// Sending MIS process.
        from: u32,
        /// The covered process whose nomination won.
        nominator: u32,
    },
    /// Phase 3: nominator `from` asks `target` to describe itself.
    Explore {
        /// Sending covered process (the nominator).
        from: u32,
        /// The nominated process being explored.
        target: u32,
        /// The MIS process the discovery is for.
        origin: u32,
    },
    /// Phase 3: chunked answer from the explored process.
    Reply {
        /// Sending (explored) process.
        from: u32,
        /// The nominator the chunk is addressed to.
        via: u32,
        /// The MIS process the discovery is for.
        origin: u32,
        /// The discovered MIS process the answer describes.
        mis: u32,
        /// Chunk sequence number.
        seq: u16,
        /// Chunk of the discovered process's neighborhood.
        ids: Vec<u32>,
    },
    /// Phase 3: the nominator relays an answer chunk to the MIS process.
    Relay {
        /// Sending covered process (the nominator).
        from: u32,
        /// The MIS process the chunk is addressed to.
        origin: u32,
        /// The discovered MIS process.
        mis: u32,
        /// Chunk sequence number.
        seq: u16,
        /// Chunk of the discovered process's neighborhood.
        ids: Vec<u32>,
    },
}

impl CcdsMsg {
    /// Sender's process id.
    pub fn from(&self) -> u32 {
        match self {
            CcdsMsg::Mis(m) => m.from(),
            CcdsMsg::Banned { from, .. }
            | CcdsMsg::Nominate { from, .. }
            | CcdsMsg::Stop { from }
            | CcdsMsg::Select { from, .. }
            | CcdsMsg::Explore { from, .. }
            | CcdsMsg::Reply { from, .. }
            | CcdsMsg::Relay { from, .. } => *from,
        }
    }

    /// Encoded size in bits (ids cost `id_bits(n)` each, plus the fixed
    /// header).
    pub fn encoded_bits(&self, n: usize) -> u64 {
        let idb = id_bits(n);
        match self {
            CcdsMsg::Mis(m) => m.encoded_bits(n),
            CcdsMsg::Banned { ids, .. } => HEADER_BITS + idb * (1 + ids.len() as u64),
            CcdsMsg::Nominate { entries, .. } => HEADER_BITS + idb + 2 * idb * entries.len() as u64,
            CcdsMsg::Stop { .. } => HEADER_BITS + idb,
            CcdsMsg::Select { .. } => HEADER_BITS + 2 * idb,
            CcdsMsg::Explore { .. } => HEADER_BITS + 3 * idb,
            CcdsMsg::Reply { ids, .. } | CcdsMsg::Relay { ids, .. } => {
                HEADER_BITS + 4 * idb + idb * ids.len() as u64
            }
        }
    }
}

/// Counters the experiment harness reads (notably for the banned-list
/// ablation: explorations per MIS node).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CcdsCounters {
    /// Search epochs in which this MIS process initiated an exploration.
    pub explorations: u64,
    /// Distinct MIS processes discovered through explorations.
    pub discoveries: u64,
}

/// An in-flight exploration, as seen by the nominator `v`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ExploreJob {
    origin: u32,
    target: u32,
}

/// An in-flight exploration, as seen by the explored process `w`.
#[derive(Debug, Clone)]
struct ReplyJob {
    origin: u32,
    via: u32,
    mis: u32,
    chunks: Vec<Vec<u32>>,
}

/// A directed-decay simulated sender at a covered process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SimSender {
    nomination: Nomination,
    active: bool,
}

/// A buffered relay chunk at the nominator.
#[derive(Debug, Clone)]
struct RelayChunk {
    origin: u32,
    mis: u32,
    seq: u16,
    ids: Vec<u32>,
}

/// The Section 5 CCDS process.
///
/// # Examples
///
/// See the crate-level documentation and `examples/quickstart.rs`; the
/// typical pattern is
///
/// ```no_run
/// use radio_structures::{Ccds, CcdsConfig};
/// use radio_sim::{EngineBuilder, DualGraph, Graph};
/// # fn net() -> DualGraph { unimplemented!() }
/// let net = net();
/// let cfg = CcdsConfig::new(net.n(), net.max_degree_g(), 256);
/// let schedule = cfg.schedule()?;
/// let mut engine = EngineBuilder::new(net)
///     .max_message_bits(cfg.b)
///     .spawn(|info| Ccds::new(&cfg, info.id).expect("valid config"))?;
/// engine.run(schedule.total);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Ccds {
    cfg: CcdsConfig,
    schedule: Schedule,
    mis: MisCore,
    my_id: u32,
    output: Option<bool>,
    current_epoch: Option<u32>,
    search_initialized: bool,
    counters: CcdsCounters,

    // --- MIS-node search state ---
    banned: BTreeSet<u32>,
    delivered: BTreeSet<u32>,
    chunks: Vec<Vec<u32>>,
    nomination: Option<Nomination>,
    nominator: Option<u32>,
    heard_this_decay: bool,
    discovered: BTreeSet<u32>,

    // --- covered-node state ---
    replicas: BTreeMap<u32, BTreeSet<u32>>,
    primaries: BTreeMap<u32, BTreeSet<u32>>,
    sims: Vec<SimSender>,
    explore_job: Option<ExploreJob>,
    reply_job: Option<ReplyJob>,
    relay_chunks: Vec<RelayChunk>,
}

impl Ccds {
    /// Creates a CCDS process.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if the configuration's message bound is too
    /// small for this `n`.
    pub fn new(cfg: &CcdsConfig, my_id: ProcessId) -> Result<Self, ScheduleError> {
        let schedule = cfg.schedule()?;
        Ok(Ccds {
            cfg: *cfg,
            schedule,
            mis: MisCore::new(cfg.n, my_id, cfg.params.mis),
            my_id: my_id.get(),
            output: None,
            current_epoch: None,
            search_initialized: false,
            counters: CcdsCounters::default(),
            banned: BTreeSet::new(),
            delivered: BTreeSet::new(),
            chunks: Vec::new(),
            nomination: None,
            nominator: None,
            heard_this_decay: false,
            discovered: BTreeSet::new(),
            replicas: BTreeMap::new(),
            primaries: BTreeMap::new(),
            sims: Vec::new(),
            explore_job: None,
            reply_job: None,
            relay_chunks: Vec::new(),
        })
    }

    /// Creates a CCDS process that **skips the MIS phase**: the MIS outcome
    /// is supplied, and the schedule contains only the search epochs. The
    /// Section 8 repair prototype uses this to re-run path finding against
    /// a changed link detector without paying the `O(log³ n)` MIS prefix.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if the configuration's message bound is too
    /// small for this `n`.
    pub fn resume_search(
        cfg: &CcdsConfig,
        my_id: ProcessId,
        in_mis: bool,
        mis_set: std::collections::BTreeSet<u32>,
    ) -> Result<Self, ScheduleError> {
        let schedule = Schedule::compute_search_only(cfg.n, cfg.delta_bound, cfg.b, &cfg.params)?;
        let mut p = Self::new(cfg, my_id)?;
        p.schedule = schedule;
        p.mis = MisCore::pre_decided(cfg.n, my_id, cfg.params.mis, in_mis, mis_set);
        Ok(p)
    }

    /// The global schedule this process follows.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The underlying MIS state (outputs, membership).
    pub fn mis(&self) -> &MisCore {
        &self.mis
    }

    /// Exploration counters for the ablation experiments.
    pub fn counters(&self) -> &CcdsCounters {
        &self.counters
    }

    /// The banned list `B_u` (meaningful for MIS nodes).
    pub fn banned(&self) -> &BTreeSet<u32> {
        &self.banned
    }

    /// MIS processes this node discovered through explorations.
    pub fn discovered(&self) -> &BTreeSet<u32> {
        &self.discovered
    }

    fn split_chunks(&self, ids: impl IntoIterator<Item = u32>) -> Vec<Vec<u32>> {
        let cap = self.schedule.chunk_capacity.max(1);
        let mut out: Vec<Vec<u32>> = Vec::new();
        for id in ids {
            match out.last_mut() {
                Some(chunk) if chunk.len() < cap => chunk.push(id),
                _ => out.push(vec![id]),
            }
        }
        out
    }

    /// Epoch-start bookkeeping (both roles).
    fn start_epoch(&mut self, ctx: &Context<'_>) {
        if !self.search_initialized {
            self.search_initialized = true;
            if self.mis.in_mis() {
                self.output = Some(true);
                self.banned.insert(self.my_id);
                self.banned.extend(ctx.detector.iter().copied());
            }
        }
        if self.mis.in_mis() {
            let diff: Vec<u32> = self.banned.difference(&self.delivered).copied().collect();
            self.chunks = self.split_chunks(diff);
            self.delivered = self.banned.clone();
        }
        self.nomination = None;
        self.nominator = None;
        self.heard_this_decay = false;
        self.sims.clear();
        self.explore_job = None;
        self.reply_job = None;
        self.relay_chunks.clear();
    }

    /// Builds this epoch's directed-decay simulated senders (covered nodes).
    fn build_nominations(&mut self, ctx: &Context<'_>) {
        if self.mis.in_mis() {
            return;
        }
        let idb = id_bits(self.cfg.n);
        let max_entries =
            (((self.cfg.b.saturating_sub(HEADER_BITS + idb)) / (2 * idb)) as usize).max(1);
        let mut sims = Vec::new();
        for &u in self.mis.mis_set() {
            if u == self.my_id || !ctx.detector.contains(&u) {
                continue;
            }
            let empty = BTreeSet::new();
            let replica = self.replicas.get(&u).unwrap_or(&empty);
            // Nominate the smallest non-banned reliable neighbor, if any.
            if let Some(&w) = ctx
                .detector
                .iter()
                .find(|w| !replica.contains(w) && **w != self.my_id)
            {
                sims.push(SimSender {
                    nomination: Nomination {
                        dest: u,
                        nominee: w,
                    },
                    active: true,
                });
            }
            if sims.len() >= max_entries {
                break; // keep combined messages within b
            }
        }
        self.sims = sims;
    }

    /// The decide half of the search-epoch state machine.
    fn search_decide(&mut self, ctx: &mut Context<'_>, phase: SearchSlot) -> Option<CcdsMsg> {
        match phase {
            SearchSlot::P1 { window, .. } => {
                if self.mis.in_mis() {
                    if let Some(chunk) = self.chunks.get(window as usize) {
                        if ctx.rng.gen_bool(0.5) {
                            return Some(CcdsMsg::Banned {
                                from: self.my_id,
                                ids: chunk.clone(),
                            });
                        }
                    }
                }
                None
            }
            SearchSlot::P2Contention { decay_phase, round } => {
                if decay_phase == 0 && round == 0 {
                    self.build_nominations(ctx);
                }
                if round == 0 {
                    self.heard_this_decay = false;
                }
                if self.mis.in_mis() || self.sims.is_empty() {
                    return None;
                }
                let p = (2f64.powi(decay_phase as i32) / self.cfg.n as f64).min(0.5);
                let entries: Vec<Nomination> = self
                    .sims
                    .iter()
                    .filter(|s| s.active)
                    .filter(|_| ctx.rng.gen_bool(p))
                    .map(|s| s.nomination)
                    .collect();
                if entries.is_empty() {
                    None
                } else {
                    Some(CcdsMsg::Nominate {
                        from: self.my_id,
                        entries,
                    })
                }
            }
            SearchSlot::P2Stop { .. } => {
                if self.mis.in_mis() && self.heard_this_decay && ctx.rng.gen_bool(0.5) {
                    Some(CcdsMsg::Stop { from: self.my_id })
                } else {
                    None
                }
            }
            SearchSlot::P3 { stage, round } => self.p3_decide(ctx, stage, round),
        }
    }

    fn p3_decide(&mut self, ctx: &mut Context<'_>, stage: P3Stage, round: u64) -> Option<CcdsMsg> {
        match stage {
            P3Stage::Select => {
                if self.mis.in_mis() {
                    if let Some(nom) = self.nomination {
                        // Freshness check: the nomination was made against a
                        // possibly stale replica of the banned list; if the
                        // nominee has been banned since (a discovery this
                        // node made in an earlier epoch that the nominator
                        // had not yet received), exploring it can only
                        // rediscover a known MIS node — skip the epoch
                        // instead of recruiting redundant relays.
                        if self.banned.contains(&nom.nominee) {
                            return None;
                        }
                        if round == 0 {
                            self.counters.explorations += 1;
                        }
                        let nominator = self.nominator.expect("set alongside nomination");
                        if ctx.rng.gen_bool(0.5) {
                            return Some(CcdsMsg::Select {
                                from: self.my_id,
                                nominator,
                            });
                        }
                    }
                }
                None
            }
            P3Stage::Explore => {
                if let Some(job) = self.explore_job {
                    // Being selected adds the nominator to the CCDS.
                    if self.output.is_none() {
                        self.output = Some(true);
                    }
                    if ctx.rng.gen_bool(0.5) {
                        return Some(CcdsMsg::Explore {
                            from: self.my_id,
                            target: job.target,
                            origin: job.origin,
                        });
                    }
                }
                None
            }
            P3Stage::Reply { chunk } => {
                if let Some(job) = &self.reply_job {
                    if let Some(ids) = job.chunks.get(chunk as usize) {
                        if ctx.rng.gen_bool(0.5) {
                            return Some(CcdsMsg::Reply {
                                from: self.my_id,
                                via: job.via,
                                origin: job.origin,
                                mis: job.mis,
                                seq: chunk as u16,
                                ids: ids.clone(),
                            });
                        }
                    }
                }
                None
            }
            P3Stage::Relay { chunk } => {
                if let Some(rc) = self
                    .relay_chunks
                    .iter()
                    .find(|rc| u64::from(rc.seq) == chunk)
                {
                    if ctx.rng.gen_bool(0.5) {
                        return Some(CcdsMsg::Relay {
                            from: self.my_id,
                            origin: rc.origin,
                            mis: rc.mis,
                            seq: rc.seq,
                            ids: rc.ids.clone(),
                        });
                    }
                }
                None
            }
        }
    }

    /// The receive half of the search-epoch state machine.
    fn search_receive(&mut self, ctx: &Context<'_>, msg: &CcdsMsg) {
        match msg {
            CcdsMsg::Mis(_) => {}
            CcdsMsg::Banned { from, ids } => {
                // Banned chunks only come from MIS processes; receiving one
                // also teaches a covered node that `from` is an MIS
                // neighbor (normally already known from the announcement).
                if !self.mis.in_mis() {
                    let epoch = self.current_epoch.unwrap_or(0);
                    let replica = self.replicas.entry(*from).or_default();
                    replica.extend(ids.iter().copied());
                    if epoch == 0 {
                        self.primaries
                            .entry(*from)
                            .or_default()
                            .extend(ids.iter().copied());
                    }
                }
            }
            CcdsMsg::Nominate { from, entries } => {
                if self.mis.in_mis() {
                    for e in entries {
                        if e.dest == self.my_id {
                            self.heard_this_decay = true;
                            if self.nomination.is_none() {
                                self.nomination = Some(*e);
                                self.nominator = Some(*from);
                            }
                        }
                    }
                }
            }
            CcdsMsg::Stop { from } => {
                for s in &mut self.sims {
                    if s.nomination.dest == *from {
                        s.active = false;
                    }
                }
            }
            CcdsMsg::Select { from, nominator } => {
                if *nominator == self.my_id && self.explore_job.is_none() {
                    // Look up which process we nominated for `from`.
                    if let Some(s) = self.sims.iter().find(|s| s.nomination.dest == *from) {
                        self.explore_job = Some(ExploreJob {
                            origin: *from,
                            target: s.nomination.nominee,
                        });
                    }
                }
            }
            CcdsMsg::Explore {
                from,
                target,
                origin,
            } => {
                if *target == self.my_id && self.reply_job.is_none() {
                    let (mis, ids): (u32, Vec<u32>) = if self.mis.in_mis() {
                        // The explored process is itself in the MIS: answer
                        // with its own neighborhood.
                        (
                            self.my_id,
                            std::iter::once(self.my_id)
                                .chain(ctx.detector.iter().copied())
                                .collect(),
                        )
                    } else {
                        // Answer with a neighboring MIS process and its
                        // primary-replica neighborhood.
                        let Some((&x, primary)) = self.primaries.iter().find(|(x, _)| {
                            ctx.detector.contains(x) && self.mis.mis_set().contains(*x)
                        }) else {
                            return;
                        };
                        (x, primary.iter().copied().collect())
                    };
                    // Replying adds the explored process to the CCDS.
                    if self.output.is_none() {
                        self.output = Some(true);
                    }
                    let chunks = self.split_chunks(ids);
                    self.reply_job = Some(ReplyJob {
                        origin: *origin,
                        via: *from,
                        mis,
                        chunks,
                    });
                }
            }
            CcdsMsg::Reply {
                via,
                origin,
                mis,
                seq,
                ids,
                ..
            } => {
                if *via == self.my_id && self.relay_chunks.iter().all(|rc| rc.seq != *seq) {
                    self.relay_chunks.push(RelayChunk {
                        origin: *origin,
                        mis: *mis,
                        seq: *seq,
                        ids: ids.clone(),
                    });
                }
            }
            CcdsMsg::Relay {
                origin, mis, ids, ..
            } => {
                if *origin == self.my_id && self.mis.in_mis() {
                    if *mis != self.my_id && !self.banned.contains(mis) {
                        self.discovered.insert(*mis);
                        self.counters.discoveries += 1;
                    }
                    self.banned.insert(*mis);
                    self.banned.extend(ids.iter().copied());
                }
            }
        }
    }
}

impl Process for Ccds {
    type Msg = Wire<CcdsMsg>;

    fn decide(&mut self, ctx: &mut Context<'_>) -> Action<Self::Msg> {
        let r0 = ctx.local_round - 1;
        let slot = self.schedule.slot(r0);
        let msg = match slot {
            Slot::Mis { r0 } => {
                self.current_epoch = None;
                self.mis.step(ctx, r0).map(CcdsMsg::Mis)
            }
            Slot::Search {
                epoch,
                epoch_start,
                phase,
            } => {
                if epoch_start || self.current_epoch != Some(epoch) {
                    self.start_epoch(ctx);
                    self.current_epoch = Some(epoch);
                }
                self.search_decide(ctx, phase)
            }
            Slot::Done { .. } => {
                if self.output.is_none() {
                    // Everyone undecided at the end outputs 0.
                    self.output = Some(false);
                }
                None
            }
        };
        match msg {
            Some(m) => {
                let bits = m.encoded_bits(self.cfg.n);
                Action::Broadcast(Wire::new(m, bits))
            }
            None => Action::Idle,
        }
    }

    fn receive(&mut self, ctx: &mut Context<'_>, msg: Option<&Self::Msg>) {
        let Some(wire) = msg else { return };
        let body = wire.body();
        // Universal rule: discard messages from outside the detector set.
        if !ctx.detector.contains(&body.from()) {
            return;
        }
        if let CcdsMsg::Mis(m) = body {
            self.mis.on_message(ctx, m);
            return;
        }
        self.search_receive(ctx, body);
    }

    fn output(&self) -> Option<bool> {
        self.output
    }

    /// CCDS outputs settle only at the end of the fixed schedule, so a
    /// process is done when it has an output (which the final slot forces).
    fn is_done(&self) -> bool {
        self.output.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check_ccds, check_mis};
    use radio_sim::topology::{random_geometric, RandomGeometricConfig};
    use radio_sim::{DualGraph, EngineBuilder, Graph, IdAssignment, LinkDetectorAssignment};
    use rand::SeedableRng;

    fn run_ccds(net: DualGraph, b: u64, seed: u64) -> (Vec<Option<bool>>, u64) {
        let cfg = CcdsConfig::new(net.n(), net.max_degree_g(), b);
        let schedule = cfg.schedule().unwrap();
        let mut engine = EngineBuilder::new(net)
            .seed(seed)
            .max_message_bits(b)
            .spawn(|info| Ccds::new(&cfg, info.id).unwrap())
            .unwrap();
        engine.run(schedule.total + 1);
        assert_eq!(
            engine.metrics().oversize_messages,
            0,
            "chunking must respect b"
        );
        (engine.outputs(), engine.round())
    }

    #[test]
    fn path_network_builds_valid_ccds() {
        let g = Graph::from_edges(10, (0..9).map(|i| (i, i + 1))).unwrap();
        let net = DualGraph::classic(g).unwrap();
        let h = net.g().clone();
        let (out, _) = run_ccds(net.clone(), 256, 3);
        let report = check_ccds(&net, &h, &out);
        assert!(report.terminated, "undecided: {}", report.undecided);
        assert!(report.connected, "CCDS not connected: {out:?}");
        assert!(
            report.dominating,
            "violations: {:?}",
            report.domination_violations
        );
    }

    #[test]
    fn geometric_network_builds_valid_ccds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let net = random_geometric(&RandomGeometricConfig::dense(48), &mut rng).unwrap();
        let ids = IdAssignment::identity(net.n());
        let det = LinkDetectorAssignment::zero_complete(&net, &ids);
        let h = det.h_graph(&ids);
        let (out, _) = run_ccds(net.clone(), 512, 5);
        let report = check_ccds(&net, &h, &out);
        assert!(report.terminated);
        assert!(report.connected, "CCDS not connected");
        assert!(report.dominating);
        // MIS layer is valid too.
        let mis_out: Vec<Option<bool>> = out.clone();
        let _ = check_mis(&net, &h, &mis_out);
    }

    #[test]
    fn small_b_produces_more_chunk_windows_and_longer_run() {
        let g = Graph::complete(16);
        let net = DualGraph::classic(g).unwrap();
        let cfg_small = CcdsConfig::new(16, 15, 64);
        let cfg_large = CcdsConfig::new(16, 15, 2048);
        assert!(cfg_small.schedule().unwrap().total > cfg_large.schedule().unwrap().total);
        let _ = net;
    }

    #[test]
    fn message_sizes_respect_bound() {
        let msg = CcdsMsg::Banned {
            from: 1,
            ids: vec![2, 3, 4],
        };
        let n = 64;
        assert_eq!(msg.encoded_bits(n), HEADER_BITS + 7 * 4);
        let reply = CcdsMsg::Reply {
            from: 1,
            via: 2,
            origin: 3,
            mis: 4,
            seq: 0,
            ids: vec![5, 6],
        };
        assert_eq!(reply.encoded_bits(n), HEADER_BITS + 4 * 7 + 2 * 7);
    }

    #[test]
    fn counters_stay_constant_per_mis_node() {
        // On a path, each MIS node has O(1) nearby MIS nodes; explorations
        // should be far below Δ even over all epochs.
        let g = Graph::from_edges(12, (0..11).map(|i| (i, i + 1))).unwrap();
        let net = DualGraph::classic(g).unwrap();
        let cfg = CcdsConfig::new(12, 2, 256);
        let schedule = cfg.schedule().unwrap();
        let mut engine = EngineBuilder::new(net)
            .seed(9)
            .spawn(|info| Ccds::new(&cfg, info.id).unwrap())
            .unwrap();
        engine.run(schedule.total + 1);
        for p in engine.procs() {
            assert!(p.counters().explorations <= u64::from(cfg.params.search_epochs));
        }
    }
}
