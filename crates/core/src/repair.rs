//! Localized structure repair — a prototype for the Section 8/10 open
//! question.
//!
//! The continuous CCDS re-runs *everything* every `δ_CDS` rounds, paying the
//! `O(log³ n)` MIS prefix each cycle even when the MIS itself is unaffected
//! by the link churn. The paper asks (§8): "we might also want to design
//! efficient repair protocols that can fix breaks in the structure in a
//! localized fashion."
//!
//! [`RepairingCcds`] is one such design: run the full algorithm once, then
//! keep the MIS fixed and re-run **only the search stage** (banned lists are
//! reset, replicas rebuilt from the *current* detector output) every
//! `δ_repair = ℓ_SE · epoch_len` rounds — a cycle shorter than the full
//! schedule by the entire MIS prefix. Relay membership is re-derived each
//! repair cycle and published atomically, so paths broken by churn are
//! replaced as soon as the next repair cycle completes.
//!
//! **Soundness condition** (inherited from keeping the MIS): the churn must
//! leave the established MIS valid — i.e. the reliable graph is static (the
//! model's assumption) and detector changes do not misreport MIS-relevant
//! coverage. Under churn that breaks the MIS itself, fall back to
//! [`ContinuousCcds`](crate::ContinuousCcds).

use crate::ccds::{Ccds, CcdsConfig, CcdsMsg, ScheduleError};
use crate::messages::Wire;
use radio_sim::{Action, Context, Process, ProcessId};
use std::collections::BTreeSet;

/// A CCDS process that bootstraps once, then repairs its search structure
/// in short cycles while keeping the MIS fixed.
///
/// [`Process::output`] reports the published structure: `None` until the
/// bootstrap cycle completes, then MIS membership plus the relays of the
/// latest completed cycle.
#[derive(Debug, Clone)]
pub struct RepairingCcds {
    cfg: CcdsConfig,
    my_id: ProcessId,
    inner: Ccds,
    /// Rounds of the bootstrap (full) cycle, including the settling round.
    full_len: u64,
    /// Rounds of each repair (search-only) cycle, including settling.
    repair_len: u64,
    bootstrapped: bool,
    committed: Option<bool>,
    in_mis: bool,
    mis_set: BTreeSet<u32>,
    repairs_completed: u64,
}

impl RepairingCcds {
    /// Creates a repairing CCDS process.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if the configuration's message bound is too
    /// small.
    pub fn new(cfg: &CcdsConfig, my_id: ProcessId) -> Result<Self, ScheduleError> {
        let inner = Ccds::new(cfg, my_id)?;
        let full = inner.schedule().total + 1;
        let repair = (inner.schedule().total - inner.schedule().mis_total) + 1;
        Ok(RepairingCcds {
            cfg: *cfg,
            my_id,
            inner,
            full_len: full,
            repair_len: repair,
            bootstrapped: false,
            committed: None,
            in_mis: false,
            mis_set: BTreeSet::new(),
            repairs_completed: 0,
        })
    }

    /// Length of the bootstrap cycle in rounds.
    pub fn bootstrap_len(&self) -> u64 {
        self.full_len
    }

    /// Length of each repair cycle in rounds — shorter than the bootstrap
    /// by the whole MIS prefix.
    pub fn repair_len(&self) -> u64 {
        self.repair_len
    }

    /// Completed repair cycles.
    pub fn repairs_completed(&self) -> u64 {
        self.repairs_completed
    }

    /// Position within the current cycle and whether a publish boundary is
    /// crossed at this round.
    fn cycle_pos(&self, r0: u64) -> (u64, bool) {
        if r0 < self.full_len {
            (r0, false)
        } else {
            let s = (r0 - self.full_len) % self.repair_len;
            (s, s == 0)
        }
    }

    fn publish_and_restart(&mut self) {
        if !self.bootstrapped {
            // End of bootstrap: freeze the MIS, publish everything.
            self.bootstrapped = true;
            self.in_mis = self.inner.mis().in_mis();
            self.mis_set = self.inner.mis().mis_set().clone();
        }
        self.committed = self.inner.output();
        self.repairs_completed += if self.repairs_completed > 0 || self.bootstrapped {
            1
        } else {
            0
        };
        self.inner = Ccds::resume_search(&self.cfg, self.my_id, self.in_mis, self.mis_set.clone())
            .expect("configuration validated at construction");
    }
}

impl Process for RepairingCcds {
    type Msg = Wire<CcdsMsg>;

    fn decide(&mut self, ctx: &mut Context<'_>) -> Action<Self::Msg> {
        let r0 = ctx.local_round - 1;
        let (pos, boundary) = self.cycle_pos(r0);
        if boundary {
            self.publish_and_restart();
        }
        let mut shifted = Context {
            local_round: pos + 1,
            n: ctx.n,
            my_id: ctx.my_id,
            detector: ctx.detector,
            rng: ctx.rng,
        };
        self.inner.decide(&mut shifted)
    }

    fn receive(&mut self, ctx: &mut Context<'_>, msg: Option<&Self::Msg>) {
        let r0 = ctx.local_round - 1;
        let (pos, _) = self.cycle_pos(r0);
        let mut shifted = Context {
            local_round: pos + 1,
            n: ctx.n,
            my_id: ctx.my_id,
            detector: ctx.detector,
            rng: ctx.rng,
        };
        self.inner.receive(&mut shifted, msg);
    }

    fn output(&self) -> Option<bool> {
        self.committed
    }

    /// The repair loop never terminates.
    fn is_done(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_ccds;
    use radio_sim::{DualGraph, EngineBuilder, Graph};

    fn path_net(n: usize) -> DualGraph {
        DualGraph::classic(Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()).unwrap()
    }

    #[test]
    fn repair_cycles_are_much_shorter_than_bootstrap() {
        let cfg = CcdsConfig::new(16, 2, 256);
        let p = RepairingCcds::new(&cfg, ProcessId::new(1).unwrap()).unwrap();
        // The repair cycle omits exactly the O(log^3 n) MIS prefix.
        let sched = cfg.schedule().unwrap();
        assert_eq!(p.bootstrap_len() - p.repair_len(), sched.mis_total);
        assert!(p.repair_len() < p.bootstrap_len());
    }

    #[test]
    fn bootstrap_then_repairs_stay_valid() {
        let n = 8usize;
        let net = path_net(n);
        let h = net.g().clone();
        let cfg = CcdsConfig::new(n, net.max_degree_g(), 256);
        let mut engine = EngineBuilder::new(net.clone())
            .seed(3)
            .spawn(|info| RepairingCcds::new(&cfg, info.id).unwrap())
            .unwrap();
        let boot = engine.procs()[0].bootstrap_len();
        let repair = engine.procs()[0].repair_len();
        // Nothing published during bootstrap.
        engine.run_rounds(boot - 1);
        assert!(engine.outputs().iter().all(Option::is_none));
        // After the boundary: a valid structure.
        engine.run_rounds(2);
        let report = check_ccds(&net, &h, &engine.outputs());
        assert!(
            report.terminated && report.connected && report.dominating,
            "{report:?}"
        );
        // Each subsequent repair cycle republishes a valid structure.
        for cycle in 1..=2u64 {
            engine.run_rounds(repair);
            let report = check_ccds(&net, &h, &engine.outputs());
            assert!(
                report.terminated && report.connected && report.dominating,
                "repair cycle {cycle}: {report:?}"
            );
            assert!(engine
                .procs()
                .iter()
                .all(|p| p.repairs_completed() >= cycle));
        }
    }

    #[test]
    fn mis_membership_is_stable_across_repairs() {
        let n = 8usize;
        let net = path_net(n);
        let cfg = CcdsConfig::new(n, net.max_degree_g(), 256);
        let mut engine = EngineBuilder::new(net)
            .seed(5)
            .spawn(|info| RepairingCcds::new(&cfg, info.id).unwrap())
            .unwrap();
        let boot = engine.procs()[0].bootstrap_len();
        let repair = engine.procs()[0].repair_len();
        engine.run_rounds(boot + 1);
        let mis_after_boot: Vec<bool> = engine.procs().iter().map(|p| p.in_mis).collect();
        engine.run_rounds(2 * repair);
        let mis_later: Vec<bool> = engine.procs().iter().map(|p| p.in_mis).collect();
        assert_eq!(mis_after_boot, mis_later, "the MIS must not churn");
        assert!(mis_after_boot.iter().any(|&m| m));
    }
}
