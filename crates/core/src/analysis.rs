//! Structure quality analysis: how good is the backbone the algorithms
//! build?
//!
//! The checkers in [`crate::checker`] decide *validity*; this module
//! quantifies *quality*: backbone size relative to offline greedy
//! constructions, the routing stretch incurred by forcing interior hops
//! onto the backbone, and per-node load statistics. Used by tests and the
//! experiment harness.

use radio_sim::{DualGraph, Graph};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Shortest path length from `src` to `dst` where every interior hop must
/// be a member of `backbone` (endpoints are exempt). `None` if no such path
/// exists.
///
/// # Panics
///
/// Panics if `backbone.len() != g.n()` or an endpoint is out of range.
pub fn backbone_distance(g: &Graph, backbone: &[bool], src: usize, dst: usize) -> Option<u32> {
    assert_eq!(backbone.len(), g.n(), "one flag per node");
    assert!(src < g.n() && dst < g.n(), "endpoint out of range");
    if src == dst {
        return Some(0);
    }
    let mut dist = vec![None; g.n()];
    dist[src] = Some(0u32);
    let mut queue = VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("queued vertices have distances");
        for &v in g.neighbors(u) {
            if v != dst && !backbone[v] {
                continue;
            }
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                if v == dst {
                    return dist[v];
                }
                queue.push_back(v);
            }
        }
    }
    dist[dst]
}

/// Quality statistics of a dominating backbone.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackboneQuality {
    /// Number of backbone members.
    pub size: usize,
    /// Backbone size divided by the offline greedy CDS size (≥ ~1; smaller
    /// is better).
    pub size_vs_greedy: f64,
    /// Maximum over connected pairs of `backbone_distance / direct
    /// distance` (the routing stretch; 1.0 is optimal).
    pub max_stretch: f64,
    /// Mean stretch over sampled pairs.
    pub mean_stretch: f64,
}

/// Measures backbone quality over `net.g()`.
///
/// Stretch is computed over all pairs for `n ≤ 128`, else over a
/// deterministic sample of sources. Returns `None` if the backbone fails to
/// route some pair (i.e. it is not actually a connected dominating set).
pub fn backbone_quality(net: &DualGraph, backbone: &[bool]) -> Option<BackboneQuality> {
    let g = net.g();
    let n = g.n();
    let greedy = radio_baselines_greedy_size(g);
    let sources: Vec<usize> = if n <= 128 {
        (0..n).collect()
    } else {
        (0..n).step_by(n / 64).collect()
    };
    let mut max_stretch = 1.0f64;
    let mut sum = 0.0f64;
    let mut count = 0u64;
    for &src in &sources {
        let direct = g.bfs_distances(src);
        for (dst, dd) in direct.iter().enumerate() {
            let Some(d) = *dd else { continue };
            if d == 0 {
                continue;
            }
            let via = backbone_distance(g, backbone, src, dst)?;
            let stretch = f64::from(via) / f64::from(d);
            max_stretch = max_stretch.max(stretch);
            sum += stretch;
            count += 1;
        }
    }
    Some(BackboneQuality {
        size: backbone.iter().filter(|&&b| b).count(),
        size_vs_greedy: backbone.iter().filter(|&&b| b).count() as f64 / greedy as f64,
        max_stretch,
        mean_stretch: if count == 0 { 1.0 } else { sum / count as f64 },
    })
}

/// Greedy CDS size, reimplemented minimally here to avoid a dependency
/// cycle with `radio-baselines` (which depends on this crate).
fn radio_baselines_greedy_size(g: &Graph) -> usize {
    // Greedy MIS...
    let mut in_set = vec![false; g.n()];
    let mut blocked = vec![false; g.n()];
    for v in 0..g.n() {
        if !blocked[v] {
            in_set[v] = true;
            for &u in g.neighbors(v) {
                blocked[u] = true;
            }
        }
    }
    // ...plus shortest connectors until connected (same scheme as
    // radio_baselines::centralized::greedy_cds).
    loop {
        let comp = components(g, &in_set);
        if comp.iter().filter_map(|c| *c).max().unwrap_or(0) == 0 {
            return in_set.iter().filter(|&&m| m).count();
        }
        let mut dist = vec![u32::MAX; g.n()];
        let mut parent = vec![usize::MAX; g.n()];
        let mut queue = VecDeque::new();
        for v in 0..g.n() {
            if comp[v] == Some(0) {
                dist[v] = 0;
                queue.push_back(v);
            }
        }
        let mut join = None;
        'bfs: while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if dist[v] == u32::MAX {
                    dist[v] = dist[u] + 1;
                    parent[v] = u;
                    if comp[v].is_some_and(|c| c != 0) {
                        join = Some(v);
                        break 'bfs;
                    }
                    queue.push_back(v);
                }
            }
        }
        let Some(mut v) = join else {
            return in_set.iter().filter(|&&m| m).count();
        };
        while parent[v] != usize::MAX {
            in_set[v] = true;
            v = parent[v];
        }
        in_set[v] = true;
    }
}

fn components(g: &Graph, member: &[bool]) -> Vec<Option<usize>> {
    let mut comp = vec![None; g.n()];
    let mut next = 0usize;
    for start in 0..g.n() {
        if !member[start] || comp[start].is_some() {
            continue;
        }
        let mut queue = VecDeque::from([start]);
        comp[start] = Some(next);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if member[v] && comp[v].is_none() {
                    comp[v] = Some(next);
                    queue.push_back(v);
                }
            }
        }
        next += 1;
    }
    comp
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::{DualGraph, Graph};

    fn path_net(n: usize) -> DualGraph {
        DualGraph::classic(Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()).unwrap()
    }

    #[test]
    fn backbone_distance_respects_membership() {
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        // Backbone = {1, 2}; route 0 → 3 must go the long way if 3's direct
        // edge neighbor (0) is fine... endpoints exempt, so 0-3 direct works.
        assert_eq!(
            backbone_distance(&g, &[false, true, true, false], 0, 3),
            Some(1)
        );
        // Remove the direct edge: 0-1-2-3 with interior on the backbone.
        let g2 = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(
            backbone_distance(&g2, &[false, true, true, false], 0, 3),
            Some(3)
        );
        // An interior non-member blocks the only path.
        assert_eq!(
            backbone_distance(&g2, &[false, true, false, false], 0, 3),
            None
        );
        assert_eq!(backbone_distance(&g2, &[false; 4], 2, 2), Some(0));
    }

    #[test]
    fn perfect_backbone_has_unit_stretch() {
        let net = path_net(6);
        let all = vec![true; 6];
        let q = backbone_quality(&net, &all).unwrap();
        assert!((q.max_stretch - 1.0).abs() < 1e-12);
        assert_eq!(q.size, 6);
    }

    #[test]
    fn interior_cds_on_path_has_unit_stretch() {
        let net = path_net(6);
        // Interior nodes form a CDS of a path.
        let backbone = vec![false, true, true, true, true, false];
        let q = backbone_quality(&net, &backbone).unwrap();
        assert!((q.max_stretch - 1.0).abs() < 1e-12);
        assert!(q.size_vs_greedy <= 1.01);
    }

    #[test]
    fn broken_backbone_returns_none() {
        let net = path_net(5);
        // Node 2 missing: cannot route 0 → 4 through the backbone.
        let backbone = vec![false, true, false, true, false];
        assert!(backbone_quality(&net, &backbone).is_none());
    }

    #[test]
    fn ccds_backbone_quality_is_reasonable() {
        use crate::runner::{run_ccds, AdversaryKind};
        use radio_sim::topology::{random_geometric, RandomGeometricConfig};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        let net = random_geometric(&RandomGeometricConfig::dense(48), &mut rng).unwrap();
        let cfg = crate::CcdsConfig::new(net.n(), net.max_degree_g(), 512);
        let run = run_ccds(&net, &cfg, AdversaryKind::Random { p: 0.5 }, 4).unwrap();
        let backbone: Vec<bool> = run.outputs.iter().map(|o| *o == Some(true)).collect();
        let q = backbone_quality(&net, &backbone).expect("valid CCDS routes everything");
        // Constant stretch (the paper's 3-hop connection guarantee implies
        // a small constant; we assert a loose bound).
        assert!(q.max_stretch <= 4.0, "stretch {}", q.max_stretch);
        assert!(q.size_vs_greedy >= 1.0);
    }
}
