//! Algorithm parameters: the paper's Θ(·) constants made explicit.
//!
//! Every phase length in the paper is "Θ(log n) with sufficiently large
//! constants". A reproduction has to pick the constants; this module makes
//! them explicit, documented knobs so experiments can report exactly what
//! was run, and so the empirical failure rate can be traded against running
//! time. Defaults are tuned so the w.h.p. guarantees hold at simulation
//! scale (n up to a few thousand) under every adversary in `radio-sim`.

use serde::{Deserialize, Serialize};

/// `⌈log₂ n⌉`, floored at 1 — the unit of all phase lengths.
///
/// # Examples
///
/// ```
/// use radio_structures::params::ceil_log2;
/// assert_eq!(ceil_log2(1), 1);
/// assert_eq!(ceil_log2(2), 1);
/// assert_eq!(ceil_log2(3), 2);
/// assert_eq!(ceil_log2(1024), 10);
/// ```
pub fn ceil_log2(n: usize) -> u32 {
    if n <= 2 {
        1
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Number of bits needed to encode one process id from `1..=n`.
///
/// Used for message-size accounting: a message carrying `k` ids contributes
/// `k · id_bits(n)` payload bits.
pub fn id_bits(n: usize) -> u64 {
    u64::from(usize::BITS - n.leading_zeros()).max(1)
}

/// Parameters of the Section 4 MIS algorithm.
///
/// The algorithm runs `ℓ_E = epoch_factor·⌈log₂ n⌉` epochs; each epoch has
/// `⌈log₂ n⌉` competition phases (broadcast probability doubling from `1/n`
/// to `1/2`) plus one announcement phase, all of length `ℓ_P =
/// phase_factor·⌈log₂ n⌉` rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MisParams {
    /// Multiplier for the phase length `ℓ_P` (paper: `Θ(log n)`).
    pub phase_factor: u32,
    /// Multiplier for the number of epochs `ℓ_E` (paper: `Θ(log n)`).
    pub epoch_factor: u32,
    /// MIS members announce with probability `1/announce_denominator`.
    ///
    /// The paper uses 1/2; its proofs only need a constant, and the hidden
    /// `(1/4)^{I_r}` factors make 1/2 impractical at realistic packing
    /// densities (with `k` announcers in `G'` interference range the
    /// single-broadcaster event has probability `k·p·(1-p)^{k-1}`, which
    /// collapses for `p = 1/2`, `k ≈ 10`). A denominator near the expected
    /// packing constant keeps announcements reliable; see `DESIGN.md`.
    pub announce_denominator: u32,
}

impl Default for MisParams {
    fn default() -> Self {
        MisParams {
            phase_factor: 6,
            epoch_factor: 4,
            announce_denominator: 8,
        }
    }
}

impl MisParams {
    /// Phase length `ℓ_P` in rounds.
    pub fn phase_len(&self, n: usize) -> u64 {
        u64::from(self.phase_factor) * u64::from(ceil_log2(n))
    }

    /// Number of competition phases per epoch (`⌈log₂ n⌉`).
    pub fn competition_phases(&self, n: usize) -> u32 {
        ceil_log2(n)
    }

    /// Epoch length in rounds: competition phases plus one announcement
    /// phase, each `ℓ_P` long.
    pub fn epoch_len(&self, n: usize) -> u64 {
        (u64::from(self.competition_phases(n)) + 1) * self.phase_len(n)
    }

    /// Number of epochs `ℓ_E`.
    pub fn epochs(&self, n: usize) -> u64 {
        u64::from(self.epoch_factor) * u64::from(ceil_log2(n))
    }

    /// Total running time of the MIS algorithm in rounds — the `O(log³ n)`
    /// of Theorem 4.6 with explicit constants.
    pub fn total_rounds(&self, n: usize) -> u64 {
        self.epochs(n) * self.epoch_len(n)
    }

    /// The announcement broadcast probability (`1/announce_denominator`).
    pub fn announce_prob(&self) -> f64 {
        1.0 / f64::from(self.announce_denominator.max(2))
    }
}

/// Parameters of the Section 5 CCDS algorithm (on top of [`MisParams`]).
///
/// `bounded-broadcast(δ, m)` runs for `ℓ_BB = bb_factor·2^δ·⌈log₂ n⌉`
/// rounds; `directed-decay` runs `⌈log₂ n⌉` doubling phases of `ℓ_DD =
/// dd_factor·⌈log₂ n⌉` rounds, each followed by a stop-order window of
/// `ℓ_BB` rounds. The paper sets the contention bounds `δ` to lattice
/// constants (`I_{d+1}`, `I_{d+2}`); [`CcdsParams::delta_bb`] is that
/// constant here, configurable because the lattice worst case is far above
/// what any concrete deployment exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CcdsParams {
    /// MIS subroutine parameters.
    pub mis: MisParams,
    /// Multiplier for `ℓ_BB` (paper: `Θ(2^δ log n)`).
    pub bb_factor: u32,
    /// The contention exponent `δ` used in every bounded-broadcast call.
    pub delta_bb: u32,
    /// Multiplier for `ℓ_DD`.
    pub dd_factor: u32,
    /// Number of search epochs `ℓ_SE` (paper: the constant `I_{3d}`).
    pub search_epochs: u32,
}

impl Default for CcdsParams {
    fn default() -> Self {
        CcdsParams {
            mis: MisParams::default(),
            bb_factor: 3,
            delta_bb: 2,
            dd_factor: 4,
            search_epochs: 8,
        }
    }
}

impl CcdsParams {
    /// `ℓ_BB(δ)` in rounds for this configuration's `δ`.
    pub fn bb_len(&self, n: usize) -> u64 {
        u64::from(self.bb_factor) * (1u64 << self.delta_bb) * u64::from(ceil_log2(n))
    }

    /// `ℓ_DD` in rounds (one decay phase, excluding the stop window).
    pub fn dd_len(&self, n: usize) -> u64 {
        u64::from(self.dd_factor) * u64::from(ceil_log2(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_values() {
        assert_eq!(ceil_log2(1), 1);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
    }

    #[test]
    fn id_bits_values() {
        assert_eq!(id_bits(1), 1);
        assert_eq!(id_bits(255), 8);
        assert_eq!(id_bits(256), 9);
    }

    #[test]
    fn mis_lengths_scale_cubically() {
        let p = MisParams::default();
        // total = epochs * (phases + 1) * phase_len = Θ(log³ n).
        let t64 = p.total_rounds(64);
        let l = u64::from(ceil_log2(64));
        assert_eq!(
            t64,
            u64::from(p.epoch_factor) * l * (l + 1) * u64::from(p.phase_factor) * l
        );
        // Growing n grows the bound.
        assert!(p.total_rounds(1024) > t64);
    }

    #[test]
    fn ccds_lengths() {
        let p = CcdsParams::default();
        assert_eq!(p.bb_len(64), 3 * 4 * 6);
        assert_eq!(p.dd_len(64), 4 * 6);
    }
}
