//! Referee-side verification of the problem definitions (Section 3).
//!
//! Both problems are defined with respect to the reliable graph `G` and the
//! detector-induced graph `H` (mutual detector membership; `G ⊆ H` for any
//! τ-complete detector):
//!
//! * **MIS** — termination (everyone outputs), independence (no `G`-edge
//!   joins two 1s), maximality (every 0 has an `H`-neighbor that output 1).
//! * **CCDS** — termination, connectivity of the 1s in `H`, domination
//!   (every 0 has an `H`-neighbor that output 1), and constant-boundedness
//!   (no node has more than `δ = O(1)` `G'`-neighbors that output 1).
//!
//! The checkers run outside the model: they see the whole network, which
//! processes cannot.

use radio_sim::geometry::DiskOverlay;
use radio_sim::{DualGraph, Graph};
use serde::{Deserialize, Serialize};

/// Outcome of verifying the MIS conditions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MisReport {
    /// Every process produced an output.
    pub terminated: bool,
    /// Number of processes with no output.
    pub undecided: usize,
    /// No reliable edge connects two processes that output 1.
    pub independent: bool,
    /// Witnesses of independence violations (reliable edges joining two 1s).
    pub independence_violations: Vec<(usize, usize)>,
    /// Every process that output 0 has an `H`-neighbor that output 1.
    pub maximal: bool,
    /// Nodes that output 0 with no `H`-neighbor in the MIS.
    pub maximality_violations: Vec<usize>,
    /// Number of processes that output 1.
    pub mis_size: usize,
}

impl MisReport {
    /// Whether the execution solved the MIS problem.
    pub fn is_valid(&self) -> bool {
        self.terminated && self.independent && self.maximal
    }
}

/// Verifies the MIS conditions for `outputs` (indexed by node) against the
/// reliable graph of `net` and the detector graph `h`.
///
/// # Panics
///
/// Panics if `outputs` or `h` disagree with the network size.
pub fn check_mis(net: &DualGraph, h: &Graph, outputs: &[Option<bool>]) -> MisReport {
    let n = net.n();
    assert_eq!(outputs.len(), n, "one output per node required");
    assert_eq!(h.n(), n, "H must cover the same nodes");
    let undecided = outputs.iter().filter(|o| o.is_none()).count();
    let in_set = |v: usize| outputs[v] == Some(true);

    let independence_violations: Vec<(usize, usize)> = net
        .g()
        .edges()
        .filter(|&(u, v)| in_set(u) && in_set(v))
        .collect();

    let maximality_violations: Vec<usize> = (0..n)
        .filter(|&v| outputs[v] == Some(false))
        .filter(|&v| !h.neighbors(v).iter().any(|&u| in_set(u)))
        .collect();

    MisReport {
        terminated: undecided == 0,
        undecided,
        independent: independence_violations.is_empty(),
        independence_violations,
        maximal: maximality_violations.is_empty(),
        maximality_violations,
        mis_size: (0..n).filter(|&v| in_set(v)).count(),
    }
}

/// Outcome of verifying the CCDS conditions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CcdsReport {
    /// Every process produced an output.
    pub terminated: bool,
    /// Number of processes with no output.
    pub undecided: usize,
    /// The processes that output 1 induce a connected subgraph of `H`.
    pub connected: bool,
    /// Every process that output 0 has an `H`-neighbor that output 1.
    pub dominating: bool,
    /// Nodes that output 0 with no `H`-neighbor in the set.
    pub domination_violations: Vec<usize>,
    /// Number of processes that output 1.
    pub ccds_size: usize,
    /// `max_v |{u ∈ N_{G'}(v) : u output 1}|` — the quantity the
    /// constant-bounded condition requires to be `O(1)`.
    pub max_gprime_neighbors_in_set: usize,
}

impl CcdsReport {
    /// Whether the execution solved the CCDS problem with bound `delta` on
    /// in-set `G'`-neighbors.
    pub fn is_valid(&self, delta: usize) -> bool {
        self.terminated
            && self.connected
            && self.dominating
            && self.max_gprime_neighbors_in_set <= delta
    }
}

/// Verifies the CCDS conditions for `outputs` against `net` and `h`.
///
/// # Panics
///
/// Panics if `outputs` or `h` disagree with the network size.
pub fn check_ccds(net: &DualGraph, h: &Graph, outputs: &[Option<bool>]) -> CcdsReport {
    let n = net.n();
    assert_eq!(outputs.len(), n, "one output per node required");
    assert_eq!(h.n(), n, "H must cover the same nodes");
    let undecided = outputs.iter().filter(|o| o.is_none()).count();
    let in_set = |v: usize| outputs[v] == Some(true);
    let member: Vec<bool> = (0..n).map(in_set).collect();

    let domination_violations: Vec<usize> = (0..n)
        .filter(|&v| outputs[v] == Some(false))
        .filter(|&v| !h.neighbors(v).iter().any(|&u| in_set(u)))
        .collect();

    let max_gprime_neighbors_in_set = (0..n)
        .map(|v| {
            net.g_prime()
                .neighbors(v)
                .iter()
                .filter(|&&u| in_set(u))
                .count()
        })
        .max()
        .unwrap_or(0);

    CcdsReport {
        terminated: undecided == 0,
        undecided,
        connected: h.induced_connected(&member),
        dominating: domination_violations.is_empty(),
        domination_violations,
        ccds_size: member.iter().filter(|&&m| m).count(),
        max_gprime_neighbors_in_set,
    }
}

/// The density statistic of Corollary 4.7: the maximum number of selected
/// nodes within Euclidean distance `r` of any node. The corollary bounds it
/// by `I_r` ([`DiskOverlay::overlap_bound`]) for a valid MIS.
///
/// Returns `None` if the network has no embedding.
pub fn mis_density_within(net: &DualGraph, outputs: &[Option<bool>], r: f64) -> Option<usize> {
    let pos = net.positions()?;
    let selected: Vec<usize> = (0..net.n()).filter(|&v| outputs[v] == Some(true)).collect();
    Some(
        (0..net.n())
            .map(|v| {
                selected
                    .iter()
                    .filter(|&&m| pos[v].dist(pos[m]) <= r)
                    .count()
            })
            .max()
            .unwrap_or(0),
    )
}

/// Convenience: the paper's `I_r` bound for the density check.
pub fn density_bound(r: f64) -> usize {
    DiskOverlay::paper().overlap_bound(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::Graph;

    fn path_net(n: usize) -> DualGraph {
        DualGraph::classic(Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap()).unwrap()
    }

    #[test]
    fn valid_mis_on_path() {
        let net = path_net(5);
        let h = net.g().clone();
        let out = vec![Some(true), Some(false), Some(true), Some(false), Some(true)];
        let r = check_mis(&net, &h, &out);
        assert!(r.is_valid());
        assert_eq!(r.mis_size, 3);
    }

    #[test]
    fn detects_independence_violation() {
        let net = path_net(3);
        let h = net.g().clone();
        let out = vec![Some(true), Some(true), Some(false)];
        let r = check_mis(&net, &h, &out);
        assert!(!r.independent);
        assert_eq!(r.independence_violations, vec![(0, 1)]);
        assert!(!r.is_valid());
    }

    #[test]
    fn detects_maximality_violation() {
        let net = path_net(4);
        let h = net.g().clone();
        let out = vec![Some(true), Some(false), Some(false), Some(false)];
        let r = check_mis(&net, &h, &out);
        assert!(!r.maximal);
        assert_eq!(r.maximality_violations, vec![2, 3]);
    }

    #[test]
    fn detects_nontermination() {
        let net = path_net(3);
        let h = net.g().clone();
        let out = vec![Some(true), None, Some(false)];
        let r = check_mis(&net, &h, &out);
        assert!(!r.terminated);
        assert_eq!(r.undecided, 1);
    }

    #[test]
    fn maximality_uses_h_not_g() {
        // Node 2 has no G-neighbor in the set but an H-neighbor (node 0).
        let net = path_net(3);
        let mut h = net.g().clone();
        h.add_edge(0, 2);
        let out = vec![Some(true), Some(false), Some(false)];
        let r = check_mis(&net, &h, &out);
        assert!(r.maximal);
    }

    #[test]
    fn valid_ccds_on_path() {
        let net = path_net(5);
        let h = net.g().clone();
        let out = vec![Some(false), Some(true), Some(true), Some(true), Some(false)];
        let r = check_ccds(&net, &h, &out);
        assert!(r.is_valid(3));
        assert_eq!(r.ccds_size, 3);
        assert_eq!(r.max_gprime_neighbors_in_set, 2);
    }

    #[test]
    fn detects_disconnected_ccds() {
        let net = path_net(5);
        let h = net.g().clone();
        let out = vec![Some(true), Some(false), Some(true), Some(false), Some(true)];
        let r = check_ccds(&net, &h, &out);
        assert!(!r.connected);
        assert!(!r.is_valid(5));
    }

    #[test]
    fn detects_domination_violation() {
        let net = path_net(5);
        let h = net.g().clone();
        let out = vec![
            Some(true),
            Some(true),
            Some(false),
            Some(false),
            Some(false),
        ];
        let r = check_ccds(&net, &h, &out);
        assert!(!r.dominating);
        assert!(r.domination_violations.contains(&3));
    }

    #[test]
    fn constant_bound_measured_in_gprime() {
        // G is a path; G' adds chords to node 0.
        let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3)]).unwrap();
        let mut gp = g.clone();
        gp.add_edge(0, 2);
        gp.add_edge(0, 3);
        let net = DualGraph::new(g, gp).unwrap();
        let h = net.g().clone();
        let out = vec![Some(false), Some(true), Some(true), Some(true)];
        let r = check_ccds(&net, &h, &out);
        // Node 0 sees 1, 2, 3 in G' — all in the set.
        assert_eq!(r.max_gprime_neighbors_in_set, 3);
        assert!(r.is_valid(3));
        assert!(!r.is_valid(2));
    }

    #[test]
    fn density_requires_embedding() {
        let net = path_net(3);
        assert_eq!(
            mis_density_within(&net, &[Some(true), None, None], 1.0),
            None
        );
    }
}
