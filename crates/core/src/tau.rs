//! The Section 6 CCDS algorithm for incomplete (τ-complete, τ = O(1)) link
//! detectors.
//!
//! With τ > 0 the single-shot MIS of Section 4 can leave a process "covered"
//! only by an `H \ G` neighbor — a process it may be unable to talk to. The
//! fix is to run **τ+1 sequential iterations** of the MIS algorithm
//! (winners sit out later iterations), with every message labeled by the
//! sender's link detector set so receivers keep only messages from mutual
//! (`H`) neighbors. If a process is covered in all τ+1 iterations, its τ+1
//! coverers are distinct, and at most τ of them can be spurious — so at
//! least one is a true `G`-neighbor (Lemma 6.1a). Each iteration adds at
//! most one winner per overlay disk, so the winner set stays constant-dense
//! (Lemma 6.1b).
//!
//! Winners are then connected by brute force, because the banned-list trick
//! of Section 5 is unsound here (a banned `H \ G` neighbor might hide the
//! only path to an undiscovered winner — and Section 7 proves *no* fast
//! algorithm exists): each winner's neighbors get a dedicated slot to
//! announce their id and masters (phase 1), then a second slot to repeat
//! everything they heard (phase 2). After that every winner knows all
//! winners within 3 `G`-hops and a connecting path; a final assignment stage
//! recruits the path relays into the CCDS. Total: `O(Δ·polylog n)` rounds —
//! and by Theorem 7.1 the Δ factor is necessary.

use crate::messages::Wire;
use crate::mis::{MisCore, MisMsg};
use crate::params::{ceil_log2, id_bits, MisParams};
use radio_sim::{Action, Context, Process, ProcessId};
use rand::Rng as _;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Parameters of the τ-complete CCDS algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TauParams {
    /// Parameters for each MIS iteration.
    pub mis: MisParams,
    /// Multiplier for the announcement-slot length (`Θ(log n)` rounds).
    pub slot_factor: u32,
}

impl Default for TauParams {
    fn default() -> Self {
        TauParams {
            mis: MisParams::default(),
            slot_factor: 12,
        }
    }
}

impl TauParams {
    /// Length of one announcement slot in rounds.
    pub fn slot_len(&self, n: usize) -> u64 {
        u64::from(self.slot_factor) * u64::from(ceil_log2(n))
    }
}

/// Static configuration for [`TauCcds`] (shared by all processes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TauConfig {
    /// Network size `n`.
    pub n: usize,
    /// Known upper bound on `Δ` plus detector slack (slot count).
    pub delta_bound: usize,
    /// Detector incompleteness τ (the algorithm runs τ+1 MIS iterations).
    pub tau: usize,
    /// Phase-length constants.
    pub params: TauParams,
}

impl TauConfig {
    /// A configuration with default parameters.
    pub fn new(n: usize, delta_bound: usize, tau: usize) -> Self {
        TauConfig {
            n,
            delta_bound,
            tau,
            params: TauParams::default(),
        }
    }

    /// The global schedule.
    pub fn schedule(&self) -> TauSchedule {
        let mis_len = self.params.mis.total_rounds(self.n);
        let slot_len = self.params.slot_len(self.n);
        let slots = self.delta_bound as u64 + self.tau as u64;
        TauSchedule {
            mis_len,
            iterations: self.tau as u64 + 1,
            slot_len,
            slots,
            total: (self.tau as u64 + 1) * mis_len + (1 + 2 * slots + 2) * slot_len,
        }
    }
}

/// Round layout of the τ-complete CCDS algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TauSchedule {
    /// Rounds per MIS iteration.
    pub mis_len: u64,
    /// Number of MIS iterations (τ+1).
    pub iterations: u64,
    /// Rounds per announcement slot.
    pub slot_len: u64,
    /// Announcement slots per phase (`Δ + τ`, one per detector neighbor).
    pub slots: u64,
    /// Total schedule length.
    pub total: u64,
}

/// A round's position in the τ-CCDS schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TauSlot {
    /// Inside MIS iteration `iter`.
    Mis {
        /// Iteration index, `0..=τ`.
        iter: u64,
        /// Round within the iteration.
        r0: u64,
    },
    /// Stage A: winners broadcast their detector lists.
    StageA {
        /// Round within the stage.
        round: u64,
    },
    /// Phase 1: per-neighbor announcement slots (id + masters).
    Phase1 {
        /// Slot index, `0..slots`.
        slot: u64,
        /// Round within the slot.
        round: u64,
    },
    /// Phase 2: per-neighbor slots repeating everything heard in phase 1.
    Phase2 {
        /// Slot index, `0..slots`.
        slot: u64,
        /// Round within the slot.
        round: u64,
    },
    /// Winners broadcast relay assignments.
    Assign {
        /// Round within the stage.
        round: u64,
    },
    /// Chosen first-hop relays re-broadcast assignments to second hops.
    RelayAssign {
        /// Round within the stage.
        round: u64,
    },
    /// Past the end of the schedule.
    Done {
        /// Whether this is the first post-schedule round.
        first: bool,
    },
}

impl TauSchedule {
    /// Maps a 0-based round index to its slot.
    pub fn slot(&self, r0: u64) -> TauSlot {
        let mis_total = self.iterations * self.mis_len;
        if r0 < mis_total {
            return TauSlot::Mis {
                iter: r0 / self.mis_len,
                r0: r0 % self.mis_len,
            };
        }
        let s = r0 - mis_total;
        if s < self.slot_len {
            return TauSlot::StageA { round: s };
        }
        let s = s - self.slot_len;
        let phase_len = self.slots * self.slot_len;
        if s < phase_len {
            return TauSlot::Phase1 {
                slot: s / self.slot_len,
                round: s % self.slot_len,
            };
        }
        let s = s - phase_len;
        if s < phase_len {
            return TauSlot::Phase2 {
                slot: s / self.slot_len,
                round: s % self.slot_len,
            };
        }
        let s = s - phase_len;
        if s < self.slot_len {
            return TauSlot::Assign { round: s };
        }
        let s = s - self.slot_len;
        if s < self.slot_len {
            return TauSlot::RelayAssign { round: s };
        }
        TauSlot::Done {
            first: s == self.slot_len,
        }
    }
}

/// One relay assignment: connect the sender to winner `x` through `v` (and
/// `w`, for 3-hop paths).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Assignment {
    /// First-hop relay (a neighbor of the assigning winner).
    pub v: u32,
    /// Second-hop relay, for 3-hop paths.
    pub w: Option<u32>,
    /// The discovered winner being connected to.
    pub x: u32,
}

/// Messages of the τ-complete algorithm. Every message carries the sender's
/// link detector set so receivers can apply the mutual (`H`) filter the
/// algorithm specifies; Section 6's bound does not depend on the message
/// size, so these messages are not chunked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TauMsg {
    /// MIS-iteration traffic, labeled with the sender's detector set.
    Mis {
        /// The embedded MIS message.
        msg: MisMsg,
        /// Sender's link detector set.
        detector: Vec<u32>,
    },
    /// Stage A: a winner's detector list (order defines neighbor slots).
    DetectorList {
        /// Sending winner.
        from: u32,
        /// The winner's detector set, ascending.
        ids: Vec<u32>,
    },
    /// Phase 1: a covered process announces itself and its masters.
    Announce1 {
        /// Sending process.
        from: u32,
        /// Sender's detector set (for the mutual filter).
        detector: Vec<u32>,
        /// Winners adjacent to the sender in `H`.
        masters: Vec<u32>,
    },
    /// Phase 2: a covered process repeats everything heard in phase 1.
    Announce2 {
        /// Sending process.
        from: u32,
        /// Sender's detector set (for the mutual filter).
        detector: Vec<u32>,
        /// `(neighbor, masters-of-neighbor)` pairs heard in phase 1.
        entries: Vec<(u32, Vec<u32>)>,
    },
    /// A winner's relay assignments.
    Assign {
        /// Sending winner.
        from: u32,
        /// Sender's detector set (for the mutual filter).
        detector: Vec<u32>,
        /// The chosen connecting paths.
        relays: Vec<Assignment>,
    },
    /// First-hop relays forward assignments to second-hop relays.
    RelayAssign {
        /// Sending first-hop relay.
        from: u32,
        /// Sender's detector set (for the mutual filter).
        detector: Vec<u32>,
        /// `(second_hop, winner)` pairs.
        entries: Vec<(u32, u32)>,
    },
}

impl TauMsg {
    /// Sender's process id.
    pub fn from(&self) -> u32 {
        match self {
            TauMsg::Mis { msg, .. } => msg.from(),
            TauMsg::DetectorList { from, .. }
            | TauMsg::Announce1 { from, .. }
            | TauMsg::Announce2 { from, .. }
            | TauMsg::Assign { from, .. }
            | TauMsg::RelayAssign { from, .. } => *from,
        }
    }

    /// The sender's detector set carried by the message (the `H` filter
    /// checks the receiver's id against it).
    pub fn sender_detector(&self) -> &[u32] {
        match self {
            TauMsg::Mis { detector, .. }
            | TauMsg::Announce1 { detector, .. }
            | TauMsg::Announce2 { detector, .. }
            | TauMsg::Assign { detector, .. }
            | TauMsg::RelayAssign { detector, .. } => detector,
            TauMsg::DetectorList { ids, .. } => ids,
        }
    }

    /// Encoded size in bits: ids at `id_bits(n)` each plus a header.
    pub fn encoded_bits(&self, n: usize) -> u64 {
        let idb = id_bits(n);
        let header = 8u64;
        let payload: u64 = match self {
            TauMsg::Mis { detector, .. } => 1 + detector.len() as u64 + 1,
            TauMsg::DetectorList { ids, .. } => 1 + ids.len() as u64,
            TauMsg::Announce1 {
                detector, masters, ..
            } => 1 + detector.len() as u64 + masters.len() as u64,
            TauMsg::Announce2 {
                detector, entries, ..
            } => {
                1 + detector.len() as u64
                    + entries.iter().map(|(_, m)| 1 + m.len() as u64).sum::<u64>()
            }
            TauMsg::Assign {
                detector, relays, ..
            } => 1 + detector.len() as u64 + 3 * relays.len() as u64,
            TauMsg::RelayAssign {
                detector, entries, ..
            } => 1 + detector.len() as u64 + 2 * entries.len() as u64,
        };
        header + payload * idb
    }
}

/// How a winner reaches a discovered winner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PathTo {
    /// Direct `H` edge.
    Direct,
    /// Two hops via `v`.
    TwoHop(u32),
    /// Three hops via `v` then `w`.
    ThreeHop(u32, u32),
}

/// The Section 6 CCDS process for τ-complete detectors.
///
/// All processes must share the same [`TauConfig`]. Winners of any MIS
/// iteration output 1; relays recruited in the assignment stages output 1;
/// everyone else outputs 0 when the schedule ends.
#[derive(Debug, Clone)]
pub struct TauCcds {
    cfg: TauConfig,
    schedule: TauSchedule,
    my_id: u32,
    mis: MisCore,
    current_iter: u64,
    won: bool,
    output: Option<bool>,
    /// Winners heard announcing, with mutual detector membership.
    masters: BTreeSet<u32>,
    /// Winner id → its stage-A detector list (defines slot ranks).
    winner_lists: BTreeMap<u32, Vec<u32>>,
    /// Phase-1 intelligence: neighbor id → that neighbor's masters.
    heard1: BTreeMap<u32, Vec<u32>>,
    /// Winner-side intelligence: discovered winner → path.
    paths: BTreeMap<u32, PathTo>,
    /// Slots (by index) in which this process announces.
    my_slots: BTreeSet<u64>,
    /// Assignments this process must forward in the relay stage.
    forward: Vec<(u32, u32)>,
    assignments: Vec<Assignment>,
    phase1_prepared: bool,
    assign_prepared: bool,
}

impl TauCcds {
    /// Creates a τ-CCDS process.
    pub fn new(cfg: &TauConfig, my_id: ProcessId) -> Self {
        TauCcds {
            cfg: *cfg,
            schedule: cfg.schedule(),
            my_id: my_id.get(),
            mis: MisCore::new(cfg.n, my_id, cfg.params.mis),
            current_iter: 0,
            won: false,
            output: None,
            masters: BTreeSet::new(),
            winner_lists: BTreeMap::new(),
            heard1: BTreeMap::new(),
            paths: BTreeMap::new(),
            my_slots: BTreeSet::new(),
            forward: Vec::new(),
            assignments: Vec::new(),
            phase1_prepared: false,
            assign_prepared: false,
        }
    }

    /// The global schedule.
    pub fn schedule(&self) -> &TauSchedule {
        &self.schedule
    }

    /// Whether this process won one of the MIS iterations (is a dominator).
    pub fn is_winner(&self) -> bool {
        self.won
    }

    /// Winners this process discovered within 3 hops (winner side).
    pub fn discovered(&self) -> impl Iterator<Item = u32> + '_ {
        self.paths.keys().copied()
    }

    fn detector_vec(ctx: &Context<'_>) -> Vec<u32> {
        ctx.detector.iter().copied().collect()
    }

    /// Prepare phase-1 slot ranks from the stage-A lists.
    fn prepare_phase1(&mut self) {
        self.my_slots.clear();
        for list in self.winner_lists.values() {
            if let Ok(rank) = list.binary_search(&self.my_id) {
                self.my_slots.insert(rank as u64);
            }
        }
        self.phase1_prepared = true;
    }

    /// Winner-side: digest announcements into discovered paths and pick
    /// relay assignments.
    fn prepare_assignments(&mut self) {
        // 2-hop discoveries from phase 1, 3-hop from phase 2 are already in
        // `paths` (inserted on reception, never downgrading). Build the
        // relay list.
        self.assignments = self
            .paths
            .iter()
            .filter_map(|(&x, path)| match *path {
                PathTo::Direct => None,
                PathTo::TwoHop(v) => Some(Assignment { v, w: None, x }),
                PathTo::ThreeHop(v, w) => Some(Assignment { v, w: Some(w), x }),
            })
            .collect();
        self.assign_prepared = true;
    }

    /// Record a discovered winner, preferring shorter paths.
    fn record_path(&mut self, x: u32, path: PathTo) {
        if x == self.my_id {
            return;
        }
        let better = match (self.paths.get(&x), &path) {
            (None, _) => true,
            (Some(PathTo::Direct), _) => false,
            (Some(PathTo::TwoHop(_)), PathTo::Direct) => true,
            (Some(PathTo::TwoHop(_)), _) => false,
            (Some(PathTo::ThreeHop(..)), PathTo::ThreeHop(..)) => false,
            (Some(PathTo::ThreeHop(..)), _) => true,
        };
        if better {
            self.paths.insert(x, path);
        }
    }

    fn decide_slot(&mut self, ctx: &mut Context<'_>, slot: TauSlot) -> Option<TauMsg> {
        match slot {
            TauSlot::Mis { iter, r0 } => {
                if iter != self.current_iter {
                    self.current_iter = iter;
                    if !self.won {
                        // Fresh MIS instance for the next iteration.
                        self.mis = MisCore::new(
                            self.cfg.n,
                            ProcessId::new_unchecked(self.my_id),
                            self.cfg.params.mis,
                        );
                    }
                }
                if self.won {
                    return None; // winners sit out later iterations
                }
                let msg = self.mis.step(ctx, r0)?;
                if self.mis.in_mis() {
                    self.won = true;
                    self.output = Some(true);
                    self.masters.insert(self.my_id);
                }
                Some(TauMsg::Mis {
                    msg,
                    detector: Self::detector_vec(ctx),
                })
            }
            TauSlot::StageA { .. } => {
                if self.won && ctx.rng.gen_bool(0.5) {
                    Some(TauMsg::DetectorList {
                        from: self.my_id,
                        ids: Self::detector_vec(ctx),
                    })
                } else {
                    None
                }
            }
            TauSlot::Phase1 { slot, .. } => {
                if !self.phase1_prepared {
                    self.prepare_phase1();
                }
                if !self.won && self.my_slots.contains(&slot) && ctx.rng.gen_bool(0.5) {
                    Some(TauMsg::Announce1 {
                        from: self.my_id,
                        detector: Self::detector_vec(ctx),
                        masters: self.masters.iter().copied().collect(),
                    })
                } else {
                    None
                }
            }
            TauSlot::Phase2 { slot, .. } => {
                if !self.won
                    && self.my_slots.contains(&slot)
                    && !self.heard1.is_empty()
                    && ctx.rng.gen_bool(0.5)
                {
                    Some(TauMsg::Announce2 {
                        from: self.my_id,
                        detector: Self::detector_vec(ctx),
                        entries: self.heard1.iter().map(|(id, m)| (*id, m.clone())).collect(),
                    })
                } else {
                    None
                }
            }
            TauSlot::Assign { .. } => {
                if !self.assign_prepared {
                    self.prepare_assignments();
                }
                if self.won && !self.assignments.is_empty() && ctx.rng.gen_bool(0.5) {
                    Some(TauMsg::Assign {
                        from: self.my_id,
                        detector: Self::detector_vec(ctx),
                        relays: self.assignments.clone(),
                    })
                } else {
                    None
                }
            }
            TauSlot::RelayAssign { .. } => {
                if !self.forward.is_empty() && ctx.rng.gen_bool(0.5) {
                    Some(TauMsg::RelayAssign {
                        from: self.my_id,
                        detector: Self::detector_vec(ctx),
                        entries: self.forward.clone(),
                    })
                } else {
                    None
                }
            }
            TauSlot::Done { .. } => {
                if self.output.is_none() {
                    self.output = Some(false);
                }
                None
            }
        }
    }

    fn receive_msg(&mut self, ctx: &Context<'_>, msg: &TauMsg) {
        // Mutual (H) filter: the sender must be in my detector and I must be
        // in the sender's.
        if !ctx.detector.contains(&msg.from()) {
            return;
        }
        if !msg.sender_detector().contains(&self.my_id) {
            return;
        }
        match msg {
            TauMsg::Mis { msg, .. } => {
                if !self.won {
                    self.mis.on_message(ctx, msg);
                }
                if let MisMsg::Announce { from } = msg {
                    self.masters.insert(*from);
                }
            }
            TauMsg::DetectorList { from, ids } => {
                self.masters.insert(*from);
                self.winner_lists.insert(*from, ids.clone());
                if self.won {
                    self.record_path(*from, PathTo::Direct);
                }
            }
            TauMsg::Announce1 { from, masters, .. } => {
                self.heard1.insert(*from, masters.clone());
                if self.won {
                    for &x in masters {
                        self.record_path(x, PathTo::TwoHop(*from));
                    }
                }
            }
            TauMsg::Announce2 { from, entries, .. } => {
                if self.won {
                    for (w, masters_w) in entries {
                        for &x in masters_w {
                            self.record_path(x, PathTo::ThreeHop(*from, *w));
                        }
                    }
                }
            }
            TauMsg::Assign { relays, .. } => {
                for a in relays {
                    if a.v == self.my_id {
                        if self.output.is_none() {
                            self.output = Some(true);
                        }
                        if let Some(w) = a.w {
                            self.forward.push((w, a.x));
                        }
                    }
                }
            }
            TauMsg::RelayAssign { entries, .. } => {
                for &(w, _x) in entries {
                    if w == self.my_id && self.output.is_none() {
                        self.output = Some(true);
                    }
                }
            }
        }
    }
}

impl Process for TauCcds {
    type Msg = Wire<TauMsg>;

    fn decide(&mut self, ctx: &mut Context<'_>) -> Action<Self::Msg> {
        let r0 = ctx.local_round - 1;
        let slot = self.schedule.slot(r0);
        match self.decide_slot(ctx, slot) {
            Some(m) => {
                let bits = m.encoded_bits(self.cfg.n);
                Action::Broadcast(Wire::new(m, bits))
            }
            None => Action::Idle,
        }
    }

    fn receive(&mut self, ctx: &mut Context<'_>, msg: Option<&Self::Msg>) {
        if let Some(wire) = msg {
            self.receive_msg(ctx, wire.body());
        }
    }

    fn output(&self) -> Option<bool> {
        self.output
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_ccds;
    use radio_sim::topology::{random_geometric, RandomGeometricConfig};
    use radio_sim::{
        DualGraph, EngineBuilder, Graph, IdAssignment, LinkDetectorAssignment, SpuriousSource,
    };
    use rand::SeedableRng;

    #[test]
    fn schedule_covers_all_stages() {
        let cfg = TauConfig::new(32, 6, 1);
        let s = cfg.schedule();
        assert_eq!(s.iterations, 2);
        assert!(matches!(s.slot(0), TauSlot::Mis { iter: 0, r0: 0 }));
        assert!(matches!(s.slot(s.mis_len), TauSlot::Mis { iter: 1, r0: 0 }));
        let base = 2 * s.mis_len;
        assert!(matches!(s.slot(base), TauSlot::StageA { round: 0 }));
        assert!(matches!(
            s.slot(base + s.slot_len),
            TauSlot::Phase1 { slot: 0, round: 0 }
        ));
        assert!(matches!(
            s.slot(base + s.slot_len + s.slots * s.slot_len),
            TauSlot::Phase2 { slot: 0, round: 0 }
        ));
        assert!(matches!(s.slot(s.total), TauSlot::Done { .. }));
    }

    #[test]
    fn tau_zero_matches_plain_structure() {
        // With τ = 0 and a 0-complete detector the algorithm reduces to one
        // MIS iteration plus the exchange; it must still build a valid CCDS.
        let g = Graph::from_edges(8, (0..7).map(|i| (i, i + 1))).unwrap();
        let net = DualGraph::classic(g).unwrap();
        let cfg = TauConfig::new(8, net.max_degree_g(), 0);
        let total = cfg.schedule().total;
        let h = net.g().clone();
        let mut engine = EngineBuilder::new(net.clone())
            .seed(5)
            .spawn(|info| TauCcds::new(&cfg, info.id))
            .unwrap();
        engine.run(total + 1);
        let report = check_ccds(&net, &h, &engine.outputs());
        assert!(report.terminated);
        assert!(report.connected, "outputs: {:?}", engine.outputs());
        assert!(report.dominating);
    }

    #[test]
    fn one_complete_detector_still_builds_ccds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let net = random_geometric(&RandomGeometricConfig::dense(32), &mut rng).unwrap();
        let ids = IdAssignment::identity(net.n());
        let det = LinkDetectorAssignment::tau_complete(
            &net,
            &ids,
            1,
            SpuriousSource::UnreliableNeighbors,
            &mut rng,
        );
        let h = det.h_graph(&ids);
        let cfg = TauConfig::new(net.n(), net.max_degree_g() + 1, 1);
        let total = cfg.schedule().total;
        let mut engine = EngineBuilder::new(net.clone())
            .seed(13)
            .detector(det)
            .spawn(|info| TauCcds::new(&cfg, info.id))
            .unwrap();
        engine.run(total + 1);
        let report = check_ccds(&net, &h, &engine.outputs());
        assert!(report.terminated);
        assert!(
            report.dominating,
            "violations: {:?}",
            report.domination_violations
        );
        assert!(report.connected);
    }

    #[test]
    fn running_time_linear_in_delta() {
        let p = TauParams::default();
        let small = TauConfig {
            n: 256,
            delta_bound: 10,
            tau: 1,
            params: p,
        }
        .schedule();
        let large = TauConfig {
            n: 256,
            delta_bound: 100,
            tau: 1,
            params: p,
        }
        .schedule();
        let fixed = 2 * small.mis_len + 3 * small.slot_len;
        let var_small = small.total - fixed;
        let var_large = large.total - fixed;
        // The variable part scales linearly with the slot count.
        assert_eq!(var_small / (small.slots), var_large / (large.slots));
    }

    #[test]
    fn message_sizes_grow_with_detector() {
        let m = TauMsg::DetectorList {
            from: 1,
            ids: vec![1, 2, 3],
        };
        let big = TauMsg::DetectorList {
            from: 1,
            ids: (1..100).collect(),
        };
        assert!(big.encoded_bits(128) > m.encoded_bits(128));
    }
}
