//! The Section 8 continuous CCDS for dynamic link detectors.
//!
//! Long-lived networks see links degrade; Section 8 models this as a
//! *dynamic* link detector that outputs a set every round and eventually
//! **stabilizes**. The continuous CCDS simply re-runs the Section 5
//! algorithm every `δ_CDS` rounds, holding back the new outputs until the
//! end of each run so the published structure switches atomically from the
//! old CCDS to the new one.
//!
//! Theorem 8.1: if the dynamic 0-complete detector stabilizes by round `r`,
//! the continuous algorithm solves the CCDS problem by round `r + 2·δ_CDS`
//! w.h.p. — one possibly-corrupted cycle in flight at stabilization plus one
//! clean cycle.

use crate::ccds::{Ccds, CcdsConfig, CcdsMsg, ScheduleError};
use crate::messages::Wire;
use radio_sim::{Action, Context, Process, ProcessId};

/// A process that runs the CCDS algorithm in back-to-back cycles and
/// atomically publishes each cycle's output when it completes.
///
/// [`Process::output`] reports the *published* output: `None` until the
/// first cycle completes, then the latest completed cycle's structure. Use
/// [`ContinuousCcds::cycle_len`] to locate cycle boundaries when checking
/// Theorem 8.1's bound.
#[derive(Debug, Clone)]
pub struct ContinuousCcds {
    cfg: CcdsConfig,
    my_id: ProcessId,
    inner: Ccds,
    cycle_len: u64,
    committed: Option<bool>,
    cycles_completed: u64,
}

impl ContinuousCcds {
    /// Creates a continuous CCDS process.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError`] if the configuration's message bound is too
    /// small.
    pub fn new(cfg: &CcdsConfig, my_id: ProcessId) -> Result<Self, ScheduleError> {
        let inner = Ccds::new(cfg, my_id)?;
        // One schedule plus the output-settling round.
        let cycle_len = inner.schedule().total + 1;
        Ok(ContinuousCcds {
            cfg: *cfg,
            my_id,
            inner,
            cycle_len,
            committed: None,
            cycles_completed: 0,
        })
    }

    /// Rounds per cycle (`δ_CDS` in the paper's notation).
    pub fn cycle_len(&self) -> u64 {
        self.cycle_len
    }

    /// Number of completed (published) cycles.
    pub fn cycles_completed(&self) -> u64 {
        self.cycles_completed
    }

    /// The in-progress (not yet published) run.
    pub fn current_run(&self) -> &Ccds {
        &self.inner
    }
}

impl Process for ContinuousCcds {
    type Msg = Wire<CcdsMsg>;

    fn decide(&mut self, ctx: &mut Context<'_>) -> Action<Self::Msg> {
        let r0 = ctx.local_round - 1;
        let cycle_pos = r0 % self.cycle_len;
        if cycle_pos == 0 && r0 > 0 {
            // Publish the finished cycle and start a fresh run.
            self.committed = self.inner.output();
            self.cycles_completed += 1;
            self.inner =
                Ccds::new(&self.cfg, self.my_id).expect("configuration validated at construction");
        }
        let mut shifted = Context {
            local_round: cycle_pos + 1,
            n: ctx.n,
            my_id: ctx.my_id,
            detector: ctx.detector,
            rng: ctx.rng,
        };
        self.inner.decide(&mut shifted)
    }

    fn receive(&mut self, ctx: &mut Context<'_>, msg: Option<&Self::Msg>) {
        let r0 = ctx.local_round - 1;
        let cycle_pos = r0 % self.cycle_len;
        let mut shifted = Context {
            local_round: cycle_pos + 1,
            n: ctx.n,
            my_id: ctx.my_id,
            detector: ctx.detector,
            rng: ctx.rng,
        };
        self.inner.receive(&mut shifted, msg);
    }

    fn output(&self) -> Option<bool> {
        self.committed
    }

    /// The continuous algorithm never terminates.
    fn is_done(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_ccds;
    use radio_sim::{
        DualGraph, DynamicDetector, EngineBuilder, Graph, IdAssignment, LinkDetectorAssignment,
    };

    /// Build a path network whose detector initially reports a *wrong*
    /// (but still 0-complete-shaped) view, then stabilizes to the true
    /// 0-complete detector at a chosen round.
    #[test]
    fn recovers_within_two_cycles_of_stabilization() {
        let n = 8;
        let g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap();
        let net = DualGraph::classic(g).unwrap();
        let ids = IdAssignment::identity(n);
        let good = LinkDetectorAssignment::zero_complete(&net, &ids);
        // A "pre-stabilization" detector missing some true neighbors
        // (modeling links that had not yet been classified).
        let sparse = {
            let mut sets: Vec<std::collections::BTreeSet<u32>> = (0..n)
                .map(|v| good.set(radio_sim::NodeId(v)).clone())
                .collect();
            for set in sets.iter_mut().skip(2) {
                let first = *set.iter().next().unwrap();
                set.remove(&first);
            }
            LinkDetectorAssignment::from_sets(sets)
        };

        let cfg = CcdsConfig::new(n, net.max_degree_g(), 256);
        let probe = ContinuousCcds::new(&cfg, ProcessId::new(1).unwrap()).unwrap();
        let delta = probe.cycle_len();
        // Stabilize mid-way through the first cycle.
        let stabilize_at = delta / 2;
        let dyn_det =
            DynamicDetector::new(vec![(1, sparse), (stabilize_at.max(2), good.clone())]).unwrap();

        let h = good.h_graph(&ids);
        let mut engine = EngineBuilder::new(net)
            .seed(17)
            .detector(dyn_det)
            .spawn(|info| ContinuousCcds::new(&cfg, info.id).unwrap())
            .unwrap();
        // Theorem 8.1: solved by stabilization + 2δ. Run just past that.
        let deadline = stabilize_at + 2 * delta;
        engine.run_rounds(deadline + 1);
        let report = check_ccds(engine.net(), &h, &engine.outputs());
        assert!(report.terminated, "undecided: {}", report.undecided);
        assert!(report.connected);
        assert!(
            report.dominating,
            "violations: {:?}",
            report.domination_violations
        );
    }

    #[test]
    fn publishes_atomically_at_cycle_boundaries() {
        let n = 6;
        let g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap();
        let net = DualGraph::classic(g).unwrap();
        let cfg = CcdsConfig::new(n, net.max_degree_g(), 256);
        let mut engine = EngineBuilder::new(net)
            .seed(3)
            .spawn(|info| ContinuousCcds::new(&cfg, info.id).unwrap())
            .unwrap();
        let delta = engine.procs()[0].cycle_len();
        // Before the first cycle completes: nothing published.
        engine.run_rounds(delta - 1);
        assert!(engine.outputs().iter().all(Option::is_none));
        assert!(engine.procs().iter().all(|p| p.cycles_completed() == 0));
        // Crossing the boundary publishes everywhere.
        engine.run_rounds(2);
        assert!(engine.outputs().iter().all(Option::is_some));
        assert!(engine.procs().iter().all(|p| p.cycles_completed() == 1));
    }
}
