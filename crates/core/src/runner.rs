//! One-call execution helpers: build an engine, run an algorithm, verify
//! the result.
//!
//! The experiment harness, examples and integration tests all follow the
//! same pattern — assemble a network, spawn one process per node, run the
//! fixed schedule, check the Section 3 conditions. These helpers package
//! that pattern with explicit, serializable results.

use crate::async_mis::{AsyncFilter, AsyncMis, AsyncMisParams};
use crate::backbone::run_backbone_flood;
use crate::ccds::{Ccds, CcdsConfig, ScheduleError};
use crate::checker::{check_ccds, check_mis, CcdsReport, MisReport};
use crate::continuous::ContinuousCcds;
use crate::mis::Mis;
use crate::params::MisParams;
use crate::tau::{TauCcds, TauConfig};
use radio_sim::{
    BatchedEngine, DualGraph, DynamicDetector, EngineBuilder, ExecutionMetrics, IdAssignment,
    LinkDetectorAssignment, NodeId, ProcessId, SpuriousSource, StopReason,
};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

pub use radio_sim::spec::AdversaryKind;

/// Result of one MIS execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MisRun {
    /// Final outputs by node.
    pub outputs: Vec<Option<bool>>,
    /// Verification of the Section 3 MIS conditions.
    pub report: MisReport,
    /// Round by which the last process decided (`None` if some never did).
    pub solve_round: Option<u64>,
    /// Rounds the engine executed.
    pub rounds_executed: u64,
    /// Channel counters.
    pub metrics: ExecutionMetrics,
}

/// Runs the Section 4 MIS on `net` with a 0-complete detector and identity
/// id assignment, then verifies it.
pub fn run_mis(net: &DualGraph, params: MisParams, adversary: AdversaryKind, seed: u64) -> MisRun {
    run_mis_budget(net, params, adversary, seed, params.total_rounds(net.n()))
}

/// [`run_mis`] with an explicit round budget (the scenario planner's stop
/// condition hook).
pub fn run_mis_budget(
    net: &DualGraph,
    params: MisParams,
    adversary: AdversaryKind,
    seed: u64,
    budget: u64,
) -> MisRun {
    let n = net.n();
    let ids = IdAssignment::identity(n);
    let det = LinkDetectorAssignment::zero_complete(net, &ids);
    let h = det.h_graph(&ids);
    let mut engine = EngineBuilder::new(net.clone())
        .seed(seed)
        .ids(ids)
        .detector(det)
        .adversary(adversary.build(seed ^ 0x5eed))
        .spawn(|info| Mis::new(info.n, info.id, params))
        .expect("engine assembly from a validated network cannot fail");
    engine.run(budget);
    let outputs = engine.outputs();
    MisRun {
        report: check_mis(net, &h, &outputs),
        solve_round: engine.all_decided_round(),
        rounds_executed: engine.round(),
        metrics: *engine.metrics(),
        outputs,
    }
}

/// Result of one CCDS execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CcdsRun {
    /// Final outputs by node.
    pub outputs: Vec<Option<bool>>,
    /// Verification of the Section 3 CCDS conditions.
    pub report: CcdsReport,
    /// Total schedule length for this configuration.
    pub schedule_total: u64,
    /// Round by which the last process decided (`None` if some never did).
    pub solve_round: Option<u64>,
    /// Rounds the engine executed.
    pub rounds_executed: u64,
    /// Channel counters.
    pub metrics: ExecutionMetrics,
    /// Maximum explorations initiated by any single MIS node (the
    /// banned-list efficiency statistic; the paper keeps this `O(1)`).
    pub max_explorations: u64,
    /// Number of MIS nodes in the final structure.
    pub mis_size: usize,
}

/// Runs the Section 5 CCDS on `net` with a 0-complete detector and identity
/// id assignment, then verifies it.
///
/// # Errors
///
/// Returns [`ScheduleError`] if `cfg.b` is too small for `cfg.n`.
pub fn run_ccds(
    net: &DualGraph,
    cfg: &CcdsConfig,
    adversary: AdversaryKind,
    seed: u64,
) -> Result<CcdsRun, ScheduleError> {
    run_ccds_budget(net, cfg, adversary, seed, None)
}

/// [`run_ccds`] with an optional cap on the schedule's round budget (the
/// scenario planner's stop condition hook).
///
/// # Errors
///
/// Returns [`ScheduleError`] if `cfg.b` is too small for `cfg.n`.
pub fn run_ccds_budget(
    net: &DualGraph,
    cfg: &CcdsConfig,
    adversary: AdversaryKind,
    seed: u64,
    max_rounds: Option<u64>,
) -> Result<CcdsRun, ScheduleError> {
    let schedule = cfg.schedule()?;
    let budget = max_rounds.map_or(schedule.total + 1, |m| (schedule.total + 1).min(m));
    let ids = IdAssignment::identity(net.n());
    let det = LinkDetectorAssignment::zero_complete(net, &ids);
    let h = det.h_graph(&ids);
    let mut engine = EngineBuilder::new(net.clone())
        .seed(seed)
        .ids(ids)
        .detector(det)
        .adversary(adversary.build(seed ^ 0x5eed))
        .max_message_bits(cfg.b)
        .spawn(|info| Ccds::new(cfg, info.id).expect("config validated above"))
        .expect("engine assembly from a validated network cannot fail");
    engine.run(budget);
    let outputs = engine.outputs();
    let max_explorations = engine
        .procs()
        .iter()
        .filter(|p| p.mis().in_mis())
        .map(|p| p.counters().explorations)
        .max()
        .unwrap_or(0);
    let mis_size = engine.procs().iter().filter(|p| p.mis().in_mis()).count();
    Ok(CcdsRun {
        report: check_ccds(net, &h, &outputs),
        schedule_total: schedule.total,
        solve_round: engine.all_decided_round(),
        rounds_executed: engine.round(),
        metrics: *engine.metrics(),
        max_explorations,
        mis_size,
        outputs,
    })
}

/// Result of one τ-complete CCDS execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TauRun {
    /// Final outputs by node.
    pub outputs: Vec<Option<bool>>,
    /// Verification of the Section 3 CCDS conditions (against the τ-induced
    /// `H`).
    pub report: CcdsReport,
    /// Total schedule length for this configuration.
    pub schedule_total: u64,
    /// Round by which the last process decided (`None` if some never did).
    pub solve_round: Option<u64>,
    /// Rounds the engine executed.
    pub rounds_executed: u64,
    /// Channel counters.
    pub metrics: ExecutionMetrics,
    /// Number of winners (dominators) in the final structure.
    pub winners: usize,
}

/// Runs the Section 6 τ-complete CCDS on `net` with the given detector
/// assignment, then verifies it against the detector-induced `H`.
pub fn run_tau_ccds(
    net: &DualGraph,
    det: &LinkDetectorAssignment,
    cfg: &TauConfig,
    adversary: AdversaryKind,
    seed: u64,
) -> TauRun {
    run_tau_ccds_budget(net, det, cfg, adversary, seed, None)
}

/// [`run_tau_ccds`] with an optional cap on the schedule's round budget
/// (the scenario planner's stop condition hook).
pub fn run_tau_ccds_budget(
    net: &DualGraph,
    det: &LinkDetectorAssignment,
    cfg: &TauConfig,
    adversary: AdversaryKind,
    seed: u64,
    max_rounds: Option<u64>,
) -> TauRun {
    let schedule = cfg.schedule();
    let budget = max_rounds.map_or(schedule.total + 1, |m| (schedule.total + 1).min(m));
    let ids = IdAssignment::identity(net.n());
    let h = det.h_graph(&ids);
    let mut engine = EngineBuilder::new(net.clone())
        .seed(seed)
        .ids(ids)
        .detector(det.clone())
        .adversary(adversary.build(seed ^ 0x5eed))
        .spawn(|info| TauCcds::new(cfg, info.id))
        .expect("engine assembly from a validated network cannot fail");
    engine.run(budget);
    let outputs = engine.outputs();
    let winners = engine.procs().iter().filter(|p| p.is_winner()).count();
    TauRun {
        report: check_ccds(net, &h, &outputs),
        schedule_total: schedule.total,
        solve_round: engine.all_decided_round(),
        rounds_executed: engine.round(),
        metrics: *engine.metrics(),
        winners,
        outputs,
    }
}

/// A selectable algorithm (value-level mirror of the runners in this
/// module, so experiment configs can be plain data).
///
/// Every variant runs through [`run_algo`], the single entry point behind
/// the experiment harness's scenario planner: one network in, one
/// [`RunRecord`] out, whatever the algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AlgoKind {
    /// The Section 4 MIS with default parameters and a 0-complete detector.
    Mis,
    /// The Section 5 CCDS at message bound `b` with a 0-complete detector.
    Ccds {
        /// Maximum message size in bits.
        b: u64,
    },
    /// The Section 6 τ-complete CCDS. The detector assignment is built
    /// from `run_algo`'s detector stream (see [`run_algo`]'s `det_rng`).
    TauCcds {
        /// Detector completeness parameter τ.
        tau: usize,
        /// Where spurious detector entries are drawn from.
        spurious: SpuriousSource,
    },
    /// The Section 9 asynchronous-start MIS with the staggered wake
    /// pattern of experiment E7. The message filter is chosen from the
    /// network: classic (`G = G'`) networks run filterless (no topology
    /// knowledge), dual graphs use the 0-complete detector filter.
    AsyncMis,
    /// The Section 8 continuous CCDS under a dynamic detector that starts
    /// sparse and stabilizes to 0-complete mid-execution (experiment E6);
    /// validity is checked `2·δ_CDS` after stabilization per Theorem 8.1.
    ContinuousDynamic {
        /// Maximum message size in bits for the underlying CCDS.
        b: u64,
    },
    /// The backbone-routing application (experiment E10): build a CCDS,
    /// then flood from node 0 with only backbone nodes forwarding
    /// (`everyone = false`) or the whole network forwarding (`true`).
    Backbone {
        /// Maximum message size in bits for the CCDS build.
        b: u64,
        /// Whether every node forwards (plain flooding baseline).
        everyone: bool,
        /// Seed of the flood phase (independent of the CCDS build seed).
        flood_seed: u64,
        /// Round budget of the flood phase.
        flood_budget: u64,
    },
}

impl AlgoKind {
    /// Short name for tables and records.
    pub fn name(&self) -> &'static str {
        match self {
            AlgoKind::Mis => "mis",
            AlgoKind::Ccds { .. } => "ccds",
            AlgoKind::TauCcds { .. } => "tau-ccds",
            AlgoKind::AsyncMis => "async-mis",
            AlgoKind::ContinuousDynamic { .. } => "continuous-dynamic",
            AlgoKind::Backbone { .. } => "backbone",
        }
    }
}

/// The common result of one algorithm execution, whatever the algorithm —
/// the serializable record the scenario planner aggregates.
///
/// Fields that only some algorithms produce are `Option`s; scalar
/// statistics with no common shape (game means, latency maxima, structure
/// sizes, …) live in `extras` as named values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Algorithm name (see [`AlgoKind::name`]).
    pub algo: String,
    /// Network size.
    pub n: usize,
    /// Maximum reliable degree `Δ` of the network.
    pub max_degree: usize,
    /// Whether the run's verification passed (per-algorithm criteria: the
    /// checker conditions for structures, coverage for floods, …).
    pub valid: bool,
    /// Round by which the run's goal was reached (`None` if never): last
    /// decision for structures, coverage for floods.
    pub solve_round: Option<u64>,
    /// Rounds the engine executed.
    pub rounds_executed: u64,
    /// Total schedule length, for fixed-schedule algorithms.
    pub schedule_total: Option<u64>,
    /// Channel counters, when an engine ran.
    pub metrics: Option<ExecutionMetrics>,
    /// Final outputs by node (empty when the run failed to start).
    pub outputs: Vec<Option<bool>>,
    /// Maximum explorations by any MIS node (CCDS banned-list statistic).
    pub max_explorations: Option<u64>,
    /// MIS nodes in the final structure (CCDS runs).
    pub mis_size: Option<usize>,
    /// Winners (dominators) in the final structure (τ-CCDS runs).
    pub winners: Option<usize>,
    /// Why the run could not execute (e.g. `b` below the schedule
    /// minimum); all other fields are defaults when set.
    pub error: Option<String>,
    /// Named scalar statistics with no common shape.
    pub extras: Vec<(String, f64)>,
}

impl RunRecord {
    /// An empty record for `algo` on a network of `n` nodes and maximum
    /// degree `delta`.
    fn new(algo: &AlgoKind, n: usize, delta: usize) -> Self {
        RunRecord::blank(algo.name(), n, delta)
    }

    /// An empty record for a workload outside this crate's [`AlgoKind`]
    /// dispatch (game sweeps, broadcast baselines, schedule probes).
    pub fn blank(algo: &str, n: usize, max_degree: usize) -> Self {
        RunRecord {
            algo: algo.to_string(),
            n,
            max_degree,
            valid: false,
            solve_round: None,
            rounds_executed: 0,
            schedule_total: None,
            metrics: None,
            outputs: Vec::new(),
            max_explorations: None,
            mis_size: None,
            winners: None,
            error: None,
            extras: Vec::new(),
        }
    }

    /// A record for a run that could not execute at all (e.g. the topology
    /// failed to build).
    pub fn failed(algo: &str, error: String) -> Self {
        let mut rec = RunRecord::blank(algo, 0, 0);
        rec.error = Some(error);
        rec
    }

    /// Whether the run reached its goal: a solve round exists and the run
    /// executed at all. Timed-out runs (`solve_round` = `None` with a
    /// nonzero `rounds_executed`) and failed builds (`error` set) are both
    /// unsolved — aggregations exclude them from solve-round statistics by
    /// default so a round cap is never mistaken for a measurement.
    pub fn solved(&self) -> bool {
        self.solve_round.is_some() && self.error.is_none()
    }

    /// Serializes the record as one line of JSONL — the streaming record
    /// format (`radio-lab --records PATH.jsonl` writes one record per
    /// line, in unit order). The output contains no raw newlines, so a
    /// line-oriented reader can [`RunRecord::from_jsonl`] each line back
    /// independently; the round-trip is lossless.
    pub fn to_jsonl(&self) -> String {
        // The compact encoder never emits newlines (strings escape them),
        // so one record is exactly one line.
        serde_json::to_string(self)
            .expect("records serialize: no non-finite extras by construction")
    }

    /// Parses one JSONL line back into the record.
    ///
    /// # Errors
    ///
    /// Returns the underlying JSON error for a malformed or
    /// wrong-shaped line.
    pub fn from_jsonl(line: &str) -> Result<RunRecord, serde_json::Error> {
        serde_json::from_str(line)
    }

    /// Looks up a named extra statistic.
    pub fn extra(&self, key: &str) -> Option<f64> {
        self.extras.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }

    /// Appends a named extra statistic. Non-finite values are dropped
    /// (JSON cannot represent them); readers treat a missing key as NaN.
    pub fn push_extra(&mut self, key: &str, value: f64) {
        if value.is_finite() {
            self.extras.push((key.to_string(), value));
        }
    }
}

/// Runs any [`AlgoKind`] on `net` and verifies the result — the single
/// entry point the scenario planner drives.
///
/// `seed` seeds the engine (and, XOR-masked, the adversary), exactly as the
/// per-algorithm runners do. `det_rng` is the detector randomness stream
/// for τ-complete detector construction: passing the generator that built
/// the topology reproduces the experiments whose detector draws continue
/// the topology stream (E4), passing a fresh one keeps them independent
/// (E11). `max_rounds`, when set, caps the algorithm's intrinsic round
/// budget.
pub fn run_algo(
    net: &DualGraph,
    algo: &AlgoKind,
    adversary: AdversaryKind,
    seed: u64,
    det_rng: &mut StdRng,
    max_rounds: Option<u64>,
) -> RunRecord {
    let cap = |budget: u64| max_rounds.map_or(budget, |m| budget.min(m));
    let n = net.n();
    let delta = net.max_degree_g();
    match *algo {
        AlgoKind::Mis | AlgoKind::Ccds { .. } | AlgoKind::TauCcds { .. } | AlgoKind::AsyncMis => {
            // One record through the batch runner with a batch of one: the
            // batch path falls back to a plain solo `Engine::run` for a
            // single trial, so the execution is exactly the per-algorithm
            // runner's, with one copy of the record-filling logic.
            run_algo_batch(
                net,
                algo,
                adversary,
                std::slice::from_ref(&seed),
                std::slice::from_mut(det_rng),
                max_rounds,
            )
            .pop()
            .expect("one seed in, one record out")
        }
        AlgoKind::ContinuousDynamic { b } => {
            let mut rec = RunRecord::new(algo, n, delta);
            run_continuous_dynamic(net, adversary, seed, b, max_rounds, &mut rec);
            rec
        }
        AlgoKind::Backbone {
            b,
            everyone,
            flood_seed,
            flood_budget,
        } => {
            let mut recs = run_backbone_modes(
                net,
                adversary,
                seed,
                b,
                &[everyone],
                flood_seed,
                cap(flood_budget),
                max_rounds,
            );
            recs.pop().expect("one mode requested")
        }
    }
}

/// Runs `algo` once per entry of `seeds` on the **same** network, batching
/// the engine phase across trials when the algorithm and network allow it.
///
/// For the fixed-schedule engine algorithms (MIS, CCDS, τ-CCDS, async MIS)
/// every trial shares the frozen topology, so their engines are handed to
/// [`BatchedEngine::run_all`]: with ≥ 2 trials on a dense (bitset-tier)
/// network the trials advance in lockstep over the shared bitmask rows,
/// fetching each broadcaster's row once per round for the whole batch;
/// otherwise each engine runs solo. Either way every trial's record is
/// bit-identical to a [`run_algo`] call with the same seed — per-trial RNG
/// streams are untouched by batching.
///
/// `det_rngs` supplies one detector stream per trial (same contract as
/// [`run_algo`]'s `det_rng`); streams are consumed in trial order.
/// Algorithms outside the single-engine shape (continuous-dynamic,
/// backbone) fall back to per-trial [`run_algo`] calls.
///
/// # Panics
///
/// Panics if `seeds` and `det_rngs` have different lengths.
pub fn run_algo_batch(
    net: &DualGraph,
    algo: &AlgoKind,
    adversary: AdversaryKind,
    seeds: &[u64],
    det_rngs: &mut [StdRng],
    max_rounds: Option<u64>,
) -> Vec<RunRecord> {
    assert_eq!(seeds.len(), det_rngs.len(), "one detector stream per trial");
    let cap = |budget: u64| max_rounds.map_or(budget, |m| budget.min(m));
    let n = net.n();
    let delta = net.max_degree_g();
    match *algo {
        AlgoKind::Mis => {
            let params = MisParams::default();
            let budget = cap(params.total_rounds(n));
            let ids = IdAssignment::identity(n);
            let det = LinkDetectorAssignment::zero_complete(net, &ids);
            let h = det.h_graph(&ids);
            let engines = seeds
                .iter()
                .map(|&seed| {
                    EngineBuilder::new(net.clone())
                        .seed(seed)
                        .ids(ids.clone())
                        .detector(det.clone())
                        .adversary(adversary.build(seed ^ 0x5eed))
                        .spawn(|info| Mis::new(info.n, info.id, params))
                        .expect("engine assembly from a validated network cannot fail")
                })
                .collect();
            let (engines, _) = BatchedEngine::run_all(engines, budget);
            engines
                .iter()
                .map(|engine| {
                    let mut rec = RunRecord::new(algo, n, delta);
                    let outputs = engine.outputs();
                    rec.valid = check_mis(net, &h, &outputs).is_valid();
                    rec.solve_round = engine.all_decided_round();
                    rec.rounds_executed = engine.round();
                    rec.metrics = Some(*engine.metrics());
                    rec.outputs = outputs;
                    // The parameter budget, for aggregated tables (E1's
                    // "budget" column reads it as an extra).
                    rec.push_extra("budget", params.total_rounds(n) as f64);
                    rec
                })
                .collect()
        }
        AlgoKind::Ccds { b } => {
            let cfg = CcdsConfig::new(n, delta, b);
            let schedule = match cfg.schedule() {
                Ok(s) => s,
                Err(e) => {
                    return seeds
                        .iter()
                        .map(|_| {
                            let mut rec = RunRecord::new(algo, n, delta);
                            rec.error = Some(e.to_string());
                            rec
                        })
                        .collect();
                }
            };
            let budget = max_rounds.map_or(schedule.total + 1, |m| (schedule.total + 1).min(m));
            let ids = IdAssignment::identity(n);
            let det = LinkDetectorAssignment::zero_complete(net, &ids);
            let h = det.h_graph(&ids);
            let engines = seeds
                .iter()
                .map(|&seed| {
                    EngineBuilder::new(net.clone())
                        .seed(seed)
                        .ids(ids.clone())
                        .detector(det.clone())
                        .adversary(adversary.build(seed ^ 0x5eed))
                        .max_message_bits(cfg.b)
                        .spawn(|info| Ccds::new(&cfg, info.id).expect("config validated above"))
                        .expect("engine assembly from a validated network cannot fail")
                })
                .collect();
            let (engines, _) = BatchedEngine::run_all(engines, budget);
            engines
                .iter()
                .map(|engine| {
                    let mut rec = RunRecord::new(algo, n, delta);
                    let outputs = engine.outputs();
                    let report = check_ccds(net, &h, &outputs);
                    rec.valid = report.terminated && report.connected && report.dominating;
                    rec.solve_round = engine.all_decided_round();
                    rec.rounds_executed = engine.round();
                    rec.schedule_total = Some(schedule.total);
                    rec.metrics = Some(*engine.metrics());
                    rec.max_explorations = Some(
                        engine
                            .procs()
                            .iter()
                            .filter(|p| p.mis().in_mis())
                            .map(|p| p.counters().explorations)
                            .max()
                            .unwrap_or(0),
                    );
                    rec.mis_size = Some(engine.procs().iter().filter(|p| p.mis().in_mis()).count());
                    rec.push_extra(
                        "max_gprime_neighbors",
                        report.max_gprime_neighbors_in_set as f64,
                    );
                    rec.outputs = outputs;
                    rec
                })
                .collect()
        }
        AlgoKind::TauCcds { tau, spurious } => {
            let ids = IdAssignment::identity(n);
            let cfg = TauConfig::new(n, delta + tau, tau);
            let schedule = cfg.schedule();
            let budget = max_rounds.map_or(schedule.total + 1, |m| (schedule.total + 1).min(m));
            // Detector draws consume each trial's stream in trial order —
            // the same draws a sequence of solo runs would make.
            let dets: Vec<LinkDetectorAssignment> = det_rngs
                .iter_mut()
                .map(|rng| LinkDetectorAssignment::tau_complete(net, &ids, tau, spurious, rng))
                .collect();
            let engines = seeds
                .iter()
                .zip(&dets)
                .map(|(&seed, det)| {
                    EngineBuilder::new(net.clone())
                        .seed(seed)
                        .ids(ids.clone())
                        .detector(det.clone())
                        .adversary(adversary.build(seed ^ 0x5eed))
                        .spawn(|info| TauCcds::new(&cfg, info.id))
                        .expect("engine assembly from a validated network cannot fail")
                })
                .collect();
            let (engines, _) = BatchedEngine::run_all(engines, budget);
            engines
                .iter()
                .zip(&dets)
                .map(|(engine, det)| {
                    let mut rec = RunRecord::new(algo, n, delta);
                    let outputs = engine.outputs();
                    let h = det.h_graph(&ids);
                    let report = check_ccds(net, &h, &outputs);
                    rec.valid = report.terminated && report.connected && report.dominating;
                    rec.solve_round = engine.all_decided_round();
                    rec.rounds_executed = engine.round();
                    rec.schedule_total = Some(schedule.total);
                    rec.metrics = Some(*engine.metrics());
                    rec.winners = Some(engine.procs().iter().filter(|p| p.is_winner()).count());
                    rec.push_extra(
                        "max_gprime_neighbors",
                        report.max_gprime_neighbors_in_set as f64,
                    );
                    rec.outputs = outputs;
                    rec
                })
                .collect()
        }
        AlgoKind::AsyncMis => {
            let filter = if net.is_classic() {
                AsyncFilter::AcceptAll
            } else {
                AsyncFilter::Detector
            };
            let params = AsyncMisParams::default();
            let epoch = params.epoch_len(n);
            let wakes: Vec<u64> = (0..n).map(|i| 1 + (i as u64 % 8) * (epoch / 2)).collect();
            let budget = cap(8 * epoch / 2 + 60 * epoch);
            let engines = seeds
                .iter()
                .map(|&seed| {
                    EngineBuilder::new(net.clone())
                        .seed(seed)
                        .wake_rounds(wakes.clone())
                        .adversary(adversary.build(seed ^ 0x5eed))
                        .spawn(|info| AsyncMis::new(info.n, info.id, params, filter))
                        .expect("engine assembly from a validated network cannot fail")
                })
                .collect();
            let (engines, outcomes) = BatchedEngine::run_all(engines, budget);
            engines
                .iter()
                .zip(&outcomes)
                .map(|(engine, out)| {
                    let mut rec = RunRecord::new(algo, n, delta);
                    let outputs = engine.outputs();
                    let max_latency = (0..n)
                        .filter_map(|v| engine.decided_latency(NodeId(v)))
                        .max()
                        .unwrap_or(0);
                    let g = engine.net().g();
                    let mut valid = out.stop == StopReason::AllDone;
                    for (u, v) in g.edges() {
                        if outputs[u] == Some(true) && outputs[v] == Some(true) {
                            valid = false;
                        }
                    }
                    for v in 0..n {
                        if outputs[v] == Some(false)
                            && !g.neighbors(v).iter().any(|&u| outputs[u] == Some(true))
                        {
                            valid = false;
                        }
                    }
                    rec.valid = valid;
                    rec.solve_round = engine.all_decided_round();
                    rec.rounds_executed = engine.round();
                    rec.metrics = Some(*engine.metrics());
                    rec.push_extra("max_latency", max_latency as f64);
                    rec.push_extra("classic", f64::from(u8::from(net.is_classic())));
                    rec.outputs = outputs;
                    rec
                })
                .collect()
        }
        AlgoKind::ContinuousDynamic { .. } | AlgoKind::Backbone { .. } => seeds
            .iter()
            .zip(det_rngs.iter_mut())
            .map(|(&seed, det_rng)| run_algo(net, algo, adversary, seed, det_rng, max_rounds))
            .collect(),
    }
}

/// The Section 8 continuous CCDS with a detector that starts sparse and
/// stabilizes to 0-complete at `δ_CDS / 2`; validity is checked at
/// stabilization + `2·δ_CDS` per Theorem 8.1.
fn run_continuous_dynamic(
    net: &DualGraph,
    adversary: AdversaryKind,
    seed: u64,
    b: u64,
    max_rounds: Option<u64>,
    rec: &mut RunRecord,
) {
    let n = net.n();
    let ids = IdAssignment::identity(n);
    let good = LinkDetectorAssignment::zero_complete(net, &ids);
    // The pre-stabilization detector: drop one entry from every set past
    // the first two, leaving it incomplete but well-formed.
    let sparse = {
        let mut sets: Vec<std::collections::BTreeSet<u32>> =
            (0..n).map(|v| good.set(NodeId(v)).clone()).collect();
        for set in sets.iter_mut().skip(2) {
            if let Some(&first) = set.iter().next() {
                set.remove(&first);
            }
        }
        LinkDetectorAssignment::from_sets(sets)
    };
    let cfg = CcdsConfig::new(n, net.max_degree_g(), b);
    let probe = match ContinuousCcds::new(&cfg, ProcessId::new(1).expect("valid id")) {
        Ok(p) => p,
        Err(e) => {
            rec.error = Some(e.to_string());
            return;
        }
    };
    let delta = probe.cycle_len();
    let stabilize_at = (delta / 2).max(2);
    let dyn_det = DynamicDetector::new(vec![(1, sparse), (stabilize_at, good.clone())])
        .expect("stabilization schedule is strictly increasing");
    let h = good.h_graph(&ids);
    let mut engine = EngineBuilder::new(net.clone())
        .seed(seed)
        .detector(dyn_det)
        .adversary(adversary.build(seed ^ 0x5eed))
        .spawn(|info| ContinuousCcds::new(&cfg, info.id).expect("config validated above"))
        .expect("engine assembly from a validated network cannot fail");
    let deadline = stabilize_at + 2 * delta;
    let total = max_rounds.map_or(deadline + 1, |m| (deadline + 1).min(m));
    engine.run_rounds(total);
    let outputs = engine.outputs();
    let report = check_ccds(engine.net(), &h, &outputs);
    rec.valid = report.terminated && report.connected && report.dominating;
    rec.rounds_executed = engine.round();
    rec.metrics = Some(*engine.metrics());
    rec.push_extra("stabilize_round", stabilize_at as f64);
    rec.push_extra("delta_cds", delta as f64);
    rec.push_extra("checked_at", total as f64);
    rec.outputs = outputs;
}

/// The E10 backbone application: build a CCDS **once** (seeded by
/// `seed`), then run one flood per entry of `modes` (`false` = only
/// backbone nodes forward, `true` = everyone floods), returning one record
/// per mode in order.
///
/// Sharing the CCDS build across modes is what makes the backbone /
/// flood-all comparison cheap: the structure construction dominates the
/// flood by orders of magnitude.
#[allow(clippy::too_many_arguments)] // flat knobs of a leaf runner
pub fn run_backbone_modes(
    net: &DualGraph,
    adversary: AdversaryKind,
    seed: u64,
    b: u64,
    modes: &[bool],
    flood_seed: u64,
    flood_budget: u64,
    max_rounds: Option<u64>,
) -> Vec<RunRecord> {
    let n = net.n();
    let delta = net.max_degree_g();
    let mode_name = |everyone: bool| if everyone { "flood-all" } else { "backbone" };
    let cfg = CcdsConfig::new(n, delta, b);
    let run = match run_ccds_budget(net, &cfg, adversary, seed, max_rounds) {
        Ok(run) => run,
        Err(e) => {
            return modes
                .iter()
                .map(|&everyone| RunRecord::failed(mode_name(everyone), e.to_string()))
                .collect();
        }
    };
    let ccds: Vec<bool> = run.outputs.iter().map(|o| *o == Some(true)).collect();
    let backbone_size = ccds.iter().filter(|&&c| c).count();
    modes
        .iter()
        .map(|&everyone| {
            let mut rec = RunRecord::blank(mode_name(everyone), n, delta);
            let flags = if everyone {
                vec![true; n]
            } else {
                ccds.clone()
            };
            let stats = run_backbone_flood(net, &flags, 0, adversary, flood_seed, flood_budget);
            rec.valid = stats.coverage_round.is_some();
            rec.solve_round = stats.coverage_round;
            rec.rounds_executed = stats.coverage_round.unwrap_or(flood_budget);
            rec.push_extra("backbone_size", backbone_size as f64);
            rec.push_extra("broadcasts", stats.broadcasts as f64);
            rec.push_extra("transmitters", stats.transmitters as f64);
            rec.outputs = run.outputs.clone();
            rec
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::topology::{random_geometric, RandomGeometricConfig};
    use radio_sim::{Graph, SpuriousSource};
    use rand::SeedableRng;

    #[test]
    fn mis_runner_verifies() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let net = random_geometric(&RandomGeometricConfig::dense(40), &mut rng).unwrap();
        let run = run_mis(
            &net,
            MisParams::default(),
            AdversaryKind::Random { p: 0.5 },
            7,
        );
        assert!(run.report.is_valid(), "{:?}", run.report);
        assert!(run.solve_round.is_some());
        assert!(run.solve_round.unwrap() <= run.rounds_executed);
    }

    #[test]
    fn ccds_runner_verifies() {
        let g = Graph::from_edges(9, (0..8).map(|i| (i, i + 1))).unwrap();
        let net = radio_sim::DualGraph::classic(g).unwrap();
        let cfg = CcdsConfig::new(9, net.max_degree_g(), 256);
        let run = run_ccds(&net, &cfg, AdversaryKind::ReliableOnly, 3).unwrap();
        assert!(run.report.terminated && run.report.connected && run.report.dominating);
        assert_eq!(run.metrics.oversize_messages, 0);
        assert!(run.mis_size >= 1);
    }

    #[test]
    fn tau_runner_verifies() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let net = random_geometric(&RandomGeometricConfig::dense(24), &mut rng).unwrap();
        let ids = IdAssignment::identity(net.n());
        let det = LinkDetectorAssignment::tau_complete(
            &net,
            &ids,
            1,
            SpuriousSource::UnreliableNeighbors,
            &mut rng,
        );
        let cfg = TauConfig::new(net.n(), net.max_degree_g() + 1, 1);
        let run = run_tau_ccds(&net, &det, &cfg, AdversaryKind::Random { p: 0.3 }, 11);
        assert!(run.report.terminated && run.report.connected && run.report.dominating);
        assert!(run.winners >= 1);
    }

    #[test]
    fn run_algo_covers_every_kind() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let net = random_geometric(&RandomGeometricConfig::dense(24), &mut rng).unwrap();
        let path = radio_sim::DualGraph::classic(
            Graph::from_edges(8, (0..7).map(|i| (i, i + 1))).unwrap(),
        )
        .unwrap();
        let kinds = [
            (AlgoKind::Mis, &net),
            (AlgoKind::Ccds { b: 256 }, &net),
            (
                AlgoKind::TauCcds {
                    tau: 1,
                    spurious: SpuriousSource::UnreliableNeighbors,
                },
                &net,
            ),
            (AlgoKind::AsyncMis, &net),
            (AlgoKind::ContinuousDynamic { b: 256 }, &path),
            (
                AlgoKind::Backbone {
                    b: 256,
                    everyone: false,
                    flood_seed: 11,
                    flood_budget: 100_000,
                },
                &net,
            ),
        ];
        for (algo, net) in kinds {
            let mut det_rng = rand::rngs::StdRng::seed_from_u64(5);
            let rec = run_algo(
                net,
                &algo,
                AdversaryKind::Random { p: 0.5 },
                7,
                &mut det_rng,
                None,
            );
            assert!(rec.error.is_none(), "{algo:?}: {:?}", rec.error);
            assert!(rec.valid, "{algo:?} must verify");
            assert_eq!(rec.algo, algo.name());
            assert_eq!(rec.n, net.n());
            // The record round-trips through the vendored serde.
            let json = serde_json::to_string(&rec).expect("record serializes");
            let back: RunRecord = serde_json::from_str(&json).expect("record parses");
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn run_algo_batch_matches_per_trial_runs() {
        // Dense clique (engines resolve to the bitset tier, so a 3-trial
        // batch actually runs batched) and a sparse path (scalar tier, so
        // the batch falls back to solo runs): both must reproduce the
        // per-trial `run_algo` records and detector streams exactly.
        use rand::RngCore;
        let clique = radio_sim::DualGraph::classic(Graph::complete(32)).unwrap();
        let path = radio_sim::DualGraph::classic(
            Graph::from_edges(24, (0..23).map(|i| (i, i + 1))).unwrap(),
        )
        .unwrap();
        let seeds = [7u64, 8, 9];
        let algos = [
            AlgoKind::Mis,
            AlgoKind::Ccds { b: 256 },
            AlgoKind::TauCcds {
                tau: 1,
                spurious: SpuriousSource::UnreliableNeighbors,
            },
            AlgoKind::AsyncMis,
            AlgoKind::ContinuousDynamic { b: 256 },
        ];
        for net in [&clique, &path] {
            for algo in &algos {
                let mut batch_rngs: Vec<StdRng> = seeds
                    .iter()
                    .map(|&s| StdRng::seed_from_u64(s * 31))
                    .collect();
                let batch = run_algo_batch(
                    net,
                    algo,
                    AdversaryKind::Random { p: 0.5 },
                    &seeds,
                    &mut batch_rngs,
                    Some(600),
                );
                assert_eq!(batch.len(), seeds.len());
                for (i, &seed) in seeds.iter().enumerate() {
                    let mut det_rng = StdRng::seed_from_u64(seed * 31);
                    let solo = run_algo(
                        net,
                        algo,
                        AdversaryKind::Random { p: 0.5 },
                        seed,
                        &mut det_rng,
                        Some(600),
                    );
                    assert_eq!(batch[i], solo, "{algo:?} trial {i} (n = {})", net.n());
                    // The detector stream must have advanced identically.
                    assert_eq!(
                        batch_rngs[i].next_u64(),
                        det_rng.next_u64(),
                        "{algo:?} trial {i} detector stream"
                    );
                }
            }
        }
    }

    #[test]
    fn jsonl_survives_non_finite_extras_and_round_trips() {
        // `push_extra` is the only sanctioned way statistics reach
        // `extras`, and it drops non-finite values — that guard is what
        // makes `to_jsonl`'s "cannot fail" expectation true even for
        // degenerate sweeps (e.g. a two-clique row with zero solved
        // trials reports mean_solve = NaN, which must vanish rather than
        // poison the record log).
        let mut rec = RunRecord::blank("two-clique", 8, 4);
        rec.push_extra("beta", 4.0);
        rec.push_extra("mean_solve", f64::NAN);
        rec.push_extra("mean_bridge", f64::INFINITY);
        assert_eq!(rec.extra("beta"), Some(4.0));
        assert_eq!(rec.extra("mean_solve"), None, "NaN extras are dropped");
        let line = rec.to_jsonl();
        assert!(!line.contains('\n'), "one record = one line");
        let back = RunRecord::from_jsonl(&line).expect("line parses");
        assert_eq!(back, rec);
        assert!(!back.solved(), "no solve round and no error ⇒ unsolved");
    }

    #[test]
    fn run_algo_reports_schedule_errors() {
        let g = Graph::from_edges(9, (0..8).map(|i| (i, i + 1))).unwrap();
        let net = radio_sim::DualGraph::classic(g).unwrap();
        let mut det_rng = rand::rngs::StdRng::seed_from_u64(5);
        let rec = run_algo(
            &net,
            &AlgoKind::Ccds { b: 1 },
            AdversaryKind::ReliableOnly,
            3,
            &mut det_rng,
            None,
        );
        assert!(rec.error.is_some());
        assert!(!rec.valid);
    }

    #[test]
    fn budget_cap_truncates_runs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let net = random_geometric(&RandomGeometricConfig::dense(24), &mut rng).unwrap();
        let mut det_rng = rand::rngs::StdRng::seed_from_u64(5);
        let rec = run_algo(
            &net,
            &AlgoKind::Mis,
            AdversaryKind::Random { p: 0.5 },
            7,
            &mut det_rng,
            Some(3),
        );
        assert_eq!(rec.rounds_executed, 3);
    }

    #[test]
    fn adversary_kinds_build() {
        for kind in [
            AdversaryKind::ReliableOnly,
            AdversaryKind::AllUnreliable,
            AdversaryKind::Random { p: 0.5 },
            AdversaryKind::Collider,
            AdversaryKind::Bursty {
                p_gb: 0.1,
                p_bg: 0.1,
            },
            AdversaryKind::CliqueIsolator,
        ] {
            let a = kind.build(1);
            assert!(!a.name().is_empty());
            assert_eq!(a.name(), kind.name());
        }
    }
}
