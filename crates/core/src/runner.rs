//! One-call execution helpers: build an engine, run an algorithm, verify
//! the result.
//!
//! The experiment harness, examples and integration tests all follow the
//! same pattern — assemble a network, spawn one process per node, run the
//! fixed schedule, check the Section 3 conditions. These helpers package
//! that pattern with explicit, serializable results.

use crate::ccds::{Ccds, CcdsConfig, ScheduleError};
use crate::checker::{check_ccds, check_mis, CcdsReport, MisReport};
use crate::mis::Mis;
use crate::params::MisParams;
use crate::tau::{TauCcds, TauConfig};
use radio_sim::adversary::{
    AllUnreliable, BurstyUnreliable, CliqueIsolator, Collider, RandomUnreliable, ReliableOnly,
};
use radio_sim::{
    Adversary, DualGraph, EngineBuilder, ExecutionMetrics, IdAssignment, LinkDetectorAssignment,
};
use serde::{Deserialize, Serialize};

/// A selectable reach-set adversary (value-level mirror of the `radio-sim`
/// adversary types, so experiment configs can be plain data).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AdversaryKind {
    /// Unreliable edges never deliver.
    ReliableOnly,
    /// Unreliable edges always deliver.
    AllUnreliable,
    /// Each unreliable edge delivers independently with probability `p`.
    Random {
        /// Per-edge, per-round activation probability.
        p: f64,
    },
    /// Adaptive: manufactures collisions wherever a clean reception was
    /// about to happen.
    Collider,
    /// Gilbert–Elliott bursty links: per-edge Good/Bad Markov chains.
    Bursty {
        /// Good→Bad transition probability per round.
        p_gb: f64,
        /// Bad→Good transition probability per round.
        p_bg: f64,
    },
    /// The Lemma 7.2 clique-isolating adversary.
    CliqueIsolator,
}

impl AdversaryKind {
    /// Instantiates the adversary (randomized kinds derive their stream
    /// from `seed`).
    pub fn build(self, seed: u64) -> Box<dyn Adversary> {
        match self {
            AdversaryKind::ReliableOnly => Box::new(ReliableOnly),
            AdversaryKind::AllUnreliable => Box::new(AllUnreliable),
            AdversaryKind::Random { p } => Box::new(RandomUnreliable::new(p, seed)),
            AdversaryKind::Collider => Box::new(Collider),
            AdversaryKind::Bursty { p_gb, p_bg } => {
                Box::new(BurstyUnreliable::new(p_gb, p_bg, seed))
            }
            AdversaryKind::CliqueIsolator => Box::new(CliqueIsolator),
        }
    }

    /// Short name for experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            AdversaryKind::ReliableOnly => "reliable-only",
            AdversaryKind::AllUnreliable => "all-unreliable",
            AdversaryKind::Random { .. } => "random-unreliable",
            AdversaryKind::Collider => "collider",
            AdversaryKind::Bursty { .. } => "bursty-unreliable",
            AdversaryKind::CliqueIsolator => "clique-isolator",
        }
    }
}

/// Result of one MIS execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MisRun {
    /// Final outputs by node.
    pub outputs: Vec<Option<bool>>,
    /// Verification of the Section 3 MIS conditions.
    pub report: MisReport,
    /// Round by which the last process decided (`None` if some never did).
    pub solve_round: Option<u64>,
    /// Rounds the engine executed.
    pub rounds_executed: u64,
    /// Channel counters.
    pub metrics: ExecutionMetrics,
}

/// Runs the Section 4 MIS on `net` with a 0-complete detector and identity
/// id assignment, then verifies it.
pub fn run_mis(net: &DualGraph, params: MisParams, adversary: AdversaryKind, seed: u64) -> MisRun {
    let n = net.n();
    let ids = IdAssignment::identity(n);
    let det = LinkDetectorAssignment::zero_complete(net, &ids);
    let h = det.h_graph(&ids);
    let mut engine = EngineBuilder::new(net.clone())
        .seed(seed)
        .ids(ids)
        .detector(det)
        .adversary(adversary.build(seed ^ 0x5eed))
        .spawn(|info| Mis::new(info.n, info.id, params))
        .expect("engine assembly from a validated network cannot fail");
    engine.run(params.total_rounds(n));
    let outputs = engine.outputs();
    MisRun {
        report: check_mis(net, &h, &outputs),
        solve_round: engine.all_decided_round(),
        rounds_executed: engine.round(),
        metrics: *engine.metrics(),
        outputs,
    }
}

/// Result of one CCDS execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CcdsRun {
    /// Final outputs by node.
    pub outputs: Vec<Option<bool>>,
    /// Verification of the Section 3 CCDS conditions.
    pub report: CcdsReport,
    /// Total schedule length for this configuration.
    pub schedule_total: u64,
    /// Round by which the last process decided (`None` if some never did).
    pub solve_round: Option<u64>,
    /// Rounds the engine executed.
    pub rounds_executed: u64,
    /// Channel counters.
    pub metrics: ExecutionMetrics,
    /// Maximum explorations initiated by any single MIS node (the
    /// banned-list efficiency statistic; the paper keeps this `O(1)`).
    pub max_explorations: u64,
    /// Number of MIS nodes in the final structure.
    pub mis_size: usize,
}

/// Runs the Section 5 CCDS on `net` with a 0-complete detector and identity
/// id assignment, then verifies it.
///
/// # Errors
///
/// Returns [`ScheduleError`] if `cfg.b` is too small for `cfg.n`.
pub fn run_ccds(
    net: &DualGraph,
    cfg: &CcdsConfig,
    adversary: AdversaryKind,
    seed: u64,
) -> Result<CcdsRun, ScheduleError> {
    let schedule = cfg.schedule()?;
    let ids = IdAssignment::identity(net.n());
    let det = LinkDetectorAssignment::zero_complete(net, &ids);
    let h = det.h_graph(&ids);
    let mut engine = EngineBuilder::new(net.clone())
        .seed(seed)
        .ids(ids)
        .detector(det)
        .adversary(adversary.build(seed ^ 0x5eed))
        .max_message_bits(cfg.b)
        .spawn(|info| Ccds::new(cfg, info.id).expect("config validated above"))
        .expect("engine assembly from a validated network cannot fail");
    engine.run(schedule.total + 1);
    let outputs = engine.outputs();
    let max_explorations = engine
        .procs()
        .iter()
        .filter(|p| p.mis().in_mis())
        .map(|p| p.counters().explorations)
        .max()
        .unwrap_or(0);
    let mis_size = engine.procs().iter().filter(|p| p.mis().in_mis()).count();
    Ok(CcdsRun {
        report: check_ccds(net, &h, &outputs),
        schedule_total: schedule.total,
        solve_round: engine.all_decided_round(),
        rounds_executed: engine.round(),
        metrics: *engine.metrics(),
        max_explorations,
        mis_size,
        outputs,
    })
}

/// Result of one τ-complete CCDS execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TauRun {
    /// Final outputs by node.
    pub outputs: Vec<Option<bool>>,
    /// Verification of the Section 3 CCDS conditions (against the τ-induced
    /// `H`).
    pub report: CcdsReport,
    /// Total schedule length for this configuration.
    pub schedule_total: u64,
    /// Round by which the last process decided (`None` if some never did).
    pub solve_round: Option<u64>,
    /// Rounds the engine executed.
    pub rounds_executed: u64,
    /// Channel counters.
    pub metrics: ExecutionMetrics,
    /// Number of winners (dominators) in the final structure.
    pub winners: usize,
}

/// Runs the Section 6 τ-complete CCDS on `net` with the given detector
/// assignment, then verifies it against the detector-induced `H`.
pub fn run_tau_ccds(
    net: &DualGraph,
    det: &LinkDetectorAssignment,
    cfg: &TauConfig,
    adversary: AdversaryKind,
    seed: u64,
) -> TauRun {
    let schedule = cfg.schedule();
    let ids = IdAssignment::identity(net.n());
    let h = det.h_graph(&ids);
    let mut engine = EngineBuilder::new(net.clone())
        .seed(seed)
        .ids(ids)
        .detector(det.clone())
        .adversary(adversary.build(seed ^ 0x5eed))
        .spawn(|info| TauCcds::new(cfg, info.id))
        .expect("engine assembly from a validated network cannot fail");
    engine.run(schedule.total + 1);
    let outputs = engine.outputs();
    let winners = engine.procs().iter().filter(|p| p.is_winner()).count();
    TauRun {
        report: check_ccds(net, &h, &outputs),
        schedule_total: schedule.total,
        solve_round: engine.all_decided_round(),
        rounds_executed: engine.round(),
        metrics: *engine.metrics(),
        winners,
        outputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use radio_sim::topology::{random_geometric, RandomGeometricConfig};
    use radio_sim::{Graph, SpuriousSource};
    use rand::SeedableRng;

    #[test]
    fn mis_runner_verifies() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let net = random_geometric(&RandomGeometricConfig::dense(40), &mut rng).unwrap();
        let run = run_mis(
            &net,
            MisParams::default(),
            AdversaryKind::Random { p: 0.5 },
            7,
        );
        assert!(run.report.is_valid(), "{:?}", run.report);
        assert!(run.solve_round.is_some());
        assert!(run.solve_round.unwrap() <= run.rounds_executed);
    }

    #[test]
    fn ccds_runner_verifies() {
        let g = Graph::from_edges(9, (0..8).map(|i| (i, i + 1))).unwrap();
        let net = radio_sim::DualGraph::classic(g).unwrap();
        let cfg = CcdsConfig::new(9, net.max_degree_g(), 256);
        let run = run_ccds(&net, &cfg, AdversaryKind::ReliableOnly, 3).unwrap();
        assert!(run.report.terminated && run.report.connected && run.report.dominating);
        assert_eq!(run.metrics.oversize_messages, 0);
        assert!(run.mis_size >= 1);
    }

    #[test]
    fn tau_runner_verifies() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let net = random_geometric(&RandomGeometricConfig::dense(24), &mut rng).unwrap();
        let ids = IdAssignment::identity(net.n());
        let det = LinkDetectorAssignment::tau_complete(
            &net,
            &ids,
            1,
            SpuriousSource::UnreliableNeighbors,
            &mut rng,
        );
        let cfg = TauConfig::new(net.n(), net.max_degree_g() + 1, 1);
        let run = run_tau_ccds(&net, &det, &cfg, AdversaryKind::Random { p: 0.3 }, 11);
        assert!(run.report.terminated && run.report.connected && run.report.dominating);
        assert!(run.winners >= 1);
    }

    #[test]
    fn adversary_kinds_build() {
        for kind in [
            AdversaryKind::ReliableOnly,
            AdversaryKind::AllUnreliable,
            AdversaryKind::Random { p: 0.5 },
            AdversaryKind::Collider,
            AdversaryKind::Bursty {
                p_gb: 0.1,
                p_bg: 0.1,
            },
            AdversaryKind::CliqueIsolator,
        ] {
            let a = kind.build(1);
            assert!(!a.name().is_empty());
            assert_eq!(a.name(), kind.name());
        }
    }
}
