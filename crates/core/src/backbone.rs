//! Using the CCDS as a routing backbone — the paper's motivating
//! application.
//!
//! The introduction positions the CCDS as "a routing backbone that can be
//! used to efficiently move information through the network": because the
//! set is *dominating*, every node is one hop from it; because it is
//! *connected*, backbone nodes can move data anywhere; and because it is
//! *constant-bounded*, contention near the backbone stays constant, and
//! non-backbone nodes can sleep through forwarding duty.
//!
//! [`BackboneFlood`] broadcasts a message network-wide with only backbone
//! nodes (plus the source) ever transmitting, using Decay-style contention
//! resolution. Against whole-network flooding it trades a constant-factor
//! latency increase for a transmission count proportional to the backbone
//! size instead of `n` — measured in experiment E10.

use crate::params::ceil_log2;
use radio_sim::{Action, Context, MessageSize, Process};
use rand::Rng as _;

/// The flood payload: origin and hop count (application data stands behind
/// these in a real deployment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackboneMsg {
    /// The process id of the flood's source.
    pub origin: u32,
    /// Hops traveled so far.
    pub hops: u32,
}

impl MessageSize for BackboneMsg {
    fn bits(&self) -> u64 {
        64
    }
}

/// A node's role in a backbone flood.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloodRole {
    /// The node that originates the message (transmits even if it is not a
    /// backbone member).
    Source,
    /// A CCDS member: forwards the message.
    Backbone,
    /// Everyone else: receive-only.
    Leaf,
}

/// The backbone flood process.
///
/// Informed transmitting nodes (source and backbone members) run repeated
/// Decay phases of `⌈log₂ n⌉ + 1` rounds, broadcasting with probability
/// `2^{-j}` in round `j` of each phase. Leaves never transmit; they output
/// as soon as they are informed.
#[derive(Debug, Clone)]
pub struct BackboneFlood {
    role: FloodRole,
    phase_len: u64,
    informed: Option<BackboneMsg>,
    my_id: u32,
}

impl BackboneFlood {
    /// Creates a process with the given role.
    pub fn new(n: usize, my_id: u32, role: FloodRole) -> Self {
        let informed = if role == FloodRole::Source {
            Some(BackboneMsg {
                origin: my_id,
                hops: 0,
            })
        } else {
            None
        };
        BackboneFlood {
            role,
            phase_len: u64::from(ceil_log2(n)) + 1,
            informed,
            my_id,
        }
    }

    /// The hop count at which this node was informed, if it has been.
    pub fn informed_hops(&self) -> Option<u32> {
        self.informed.map(|m| m.hops)
    }

    /// The node's role.
    pub fn role(&self) -> FloodRole {
        self.role
    }
}

impl Process for BackboneFlood {
    type Msg = BackboneMsg;

    fn decide(&mut self, ctx: &mut Context<'_>) -> Action<BackboneMsg> {
        let Some(msg) = self.informed else {
            return Action::Idle;
        };
        if self.role == FloodRole::Leaf {
            return Action::Idle;
        }
        let j = (ctx.local_round - 1) % self.phase_len;
        if ctx.rng.gen_bool(0.5f64.powi(j as i32)) {
            Action::Broadcast(BackboneMsg {
                origin: msg.origin,
                hops: msg.hops + 1,
            })
        } else {
            Action::Idle
        }
    }

    fn receive(&mut self, _ctx: &mut Context<'_>, msg: Option<&BackboneMsg>) {
        if let (None, Some(m)) = (self.informed, msg) {
            let _ = self.my_id;
            self.informed = Some(*m);
        }
    }

    fn output(&self) -> Option<bool> {
        self.informed.map(|_| true)
    }
}

/// Outcome of one flood run (backbone or plain), for E10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FloodStats {
    /// Rounds until every node was informed (`None` = budget exhausted).
    pub coverage_round: Option<u64>,
    /// Total broadcast transmissions (the energy proxy).
    pub broadcasts: u64,
    /// Number of nodes that ever transmit (source + forwarders).
    pub transmitters: usize,
}

/// Runs a flood from `source` over `net`, with `ccds` selecting the
/// forwarders (pass all-true for plain flooding). Returns coverage stats.
pub fn run_backbone_flood(
    net: &radio_sim::DualGraph,
    ccds: &[bool],
    source: usize,
    adversary: crate::runner::AdversaryKind,
    seed: u64,
    budget: u64,
) -> FloodStats {
    let n = net.n();
    assert_eq!(ccds.len(), n, "one backbone flag per node");
    assert!(source < n, "source out of range");
    let mut engine = radio_sim::EngineBuilder::new(net.clone())
        .seed(seed)
        .adversary(adversary.build(seed ^ 0xb0b))
        .spawn(|info| {
            let v = info.node.index();
            let role = if v == source {
                FloodRole::Source
            } else if ccds[v] {
                FloodRole::Backbone
            } else {
                FloodRole::Leaf
            };
            BackboneFlood::new(info.n, info.id.get(), role)
        })
        .expect("engine assembly from a validated network cannot fail");
    let out = engine.run(budget);
    let covered = engine.outputs().iter().all(Option::is_some);
    FloodStats {
        coverage_round: covered.then_some(out.rounds),
        broadcasts: engine.metrics().broadcasts,
        transmitters: (0..n).filter(|&v| v == source || ccds[v]).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_ccds, AdversaryKind};
    use crate::CcdsConfig;
    use radio_sim::topology::{random_geometric, RandomGeometricConfig};
    use rand::SeedableRng;

    #[test]
    fn backbone_flood_covers_with_fewer_transmitters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let net = random_geometric(&RandomGeometricConfig::dense(48), &mut rng).unwrap();
        let cfg = CcdsConfig::new(net.n(), net.max_degree_g(), 512);
        let run = run_ccds(&net, &cfg, AdversaryKind::Random { p: 0.5 }, 3).unwrap();
        assert!(run.report.connected && run.report.dominating);
        let ccds: Vec<bool> = run.outputs.iter().map(|o| *o == Some(true)).collect();

        let via_backbone =
            run_backbone_flood(&net, &ccds, 0, AdversaryKind::Random { p: 0.5 }, 9, 50_000);
        let plain = run_backbone_flood(
            &net,
            &vec![true; net.n()],
            0,
            AdversaryKind::Random { p: 0.5 },
            9,
            50_000,
        );
        assert!(
            via_backbone.coverage_round.is_some(),
            "backbone flood must cover"
        );
        assert!(plain.coverage_round.is_some());
        assert!(via_backbone.transmitters < plain.transmitters);
        // The energy claim is about the transmission *rate* (broadcasts per
        // round): fewer nodes contend, so the channel carries less traffic —
        // totals can favor either side since coverage times differ.
        let rate = |s: &FloodStats| s.broadcasts as f64 / s.coverage_round.expect("covered") as f64;
        assert!(rate(&via_backbone) < rate(&plain));
    }

    #[test]
    fn leaf_never_transmits() {
        use radio_sim::{DualGraph, Graph};
        let net = DualGraph::classic(Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap()).unwrap();
        // Backbone = {1}; source = 0; node 2 is a leaf.
        let stats = run_backbone_flood(
            &net,
            &[false, true, false],
            0,
            AdversaryKind::ReliableOnly,
            1,
            10_000,
        );
        assert_eq!(stats.transmitters, 2);
        assert!(stats.coverage_round.is_some());
    }

    #[test]
    fn message_size_is_fixed() {
        let m = BackboneMsg { origin: 1, hops: 3 };
        assert_eq!(m.bits(), 64);
    }
}
