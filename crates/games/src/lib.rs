//! # hitting-games — the Ω(Δ) lower-bound machinery of Section 7
//!
//! Theorem 7.1 of *Structuring Unreliable Radio Networks*: any CCDS
//! algorithm that works with 1-complete link detectors needs `Ω(Δ)` rounds,
//! **regardless of message size** — a fundamental separation from the
//! 0-complete case (where Section 5 gives `O(polylog n)` for large
//! messages) and from the classic radio model.
//!
//! The proof is a two-step reduction, and this crate implements every step
//! as runnable code:
//!
//! 1. [`single`] — the β-single hitting game: guess a hidden element of
//!    `[β]`, one guess per round. Needs `Ω(β)` rounds; measured directly.
//! 2. [`double`] — the β-double hitting game: two non-communicating
//!    automata, each given the *other's* target.
//! 3. [`reduction`] — Lemma 7.2 (simulate any CCDS algorithm on the
//!    two-clique network as two game players) and Lemma 7.3 (the winner
//!    table that turns a double-game solver into a single-game solver).
//! 4. [`experiment`] — the end-to-end check on the real simulator: the
//!    Section 6 algorithm on the real two-clique network under the
//!    clique-isolating adversary, measuring when the bridge joins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod double;
pub mod experiment;
pub mod reduction;
pub mod single;

pub use double::{mean_double_solve_time, play_double, DoubleOutcome, DoublePlayer, SweepPlayer};
pub use experiment::{run_two_clique, two_clique_sweep, TwoCliqueRun, TwoCliqueSummary};
pub use reduction::{CliquePlayer, CliqueRole, SingleConstruction, SingleFromDouble, WinnerTable};
pub use single::{
    expected_rounds_floor, mean_hitting_time, play_single, SinglePlayer, Sweep,
    UniformNoReplacement, UniformWithReplacement,
};
