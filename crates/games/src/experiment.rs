//! End-to-end lower-bound experiments on the real simulator (E5b).
//!
//! The reduction in [`crate::reduction`] argues about *simulated*
//! executions; this module runs the actual engine on the actual two-clique
//! network of Lemma 7.2, under the clique-isolating adversary, with the
//! proof's 1-complete detectors — and measures how long a real CCDS
//! algorithm (the Section 6 τ-CCDS) takes to put the bridge endpoints into
//! the structure. Theorem 7.1 predicts growth at least linear in
//! `Δ = β`; the Section 6 upper bound predicts at most `O(Δ·polylog n)`.

use radio_sim::adversary::CliqueIsolator;
use radio_sim::topology::TwoClique;
use radio_sim::{EngineBuilder, IdAssignment};
use radio_structures::checker::{check_ccds, CcdsReport};
use radio_structures::{TauCcds, TauConfig};
use serde::{Deserialize, Serialize};

/// Result of one two-clique lower-bound run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TwoCliqueRun {
    /// Clique size (`Δ = β`).
    pub beta: usize,
    /// First round by which *both* bridge endpoints had output 1 (`None`
    /// if they never did within the schedule).
    pub bridge_round: Option<u64>,
    /// Round by which every process had decided.
    pub solve_round: Option<u64>,
    /// The schedule's total length.
    pub schedule_total: u64,
    /// Verification of the final structure against `H` (= `G` here).
    pub report: CcdsReport,
}

/// Runs the τ-CCDS algorithm on the two-clique network under the
/// clique-isolating adversary with the proof's 1-complete detectors.
///
/// `bridge_a`/`bridge_b` are the local indices of the bridge endpoints
/// within their cliques — the adversary's hidden targets.
///
/// # Panics
///
/// Panics if `beta < 2` or a bridge index is out of range (programmer
/// error in an experiment definition).
pub fn run_two_clique(beta: usize, bridge_a: usize, bridge_b: usize, seed: u64) -> TwoCliqueRun {
    let tc = TwoClique::new(beta, bridge_a, bridge_b).expect("valid two-clique parameters");
    let net = tc.network().clone();
    let n = net.n();
    let ids = IdAssignment::identity(n);
    let det = tc.proof_detectors(&ids);
    let h = det.h_graph(&ids);
    // Small networks leave w.h.p. events little room; use beefier constants
    // than the library defaults (the lower bound is about *growth in Δ*, so
    // the constant factor is immaterial to the experiment's shape).
    let mut cfg = TauConfig::new(n, beta, 1);
    cfg.params.mis.phase_factor = 10;
    cfg.params.slot_factor = 16;
    let schedule_total = cfg.schedule().total;
    let bridge_nodes = [tc.bridge_a(), tc.bridge_b()];

    let mut engine = EngineBuilder::new(net.clone())
        .seed(seed)
        .ids(ids)
        .detector(det)
        .adversary(CliqueIsolator)
        .spawn(|info| TauCcds::new(&cfg, info.id))
        .expect("engine assembly from a validated network cannot fail");
    engine.run(schedule_total + 1);

    let bridge_round = bridge_nodes
        .iter()
        .map(|&v| match engine.outputs()[v.index()] {
            Some(true) => engine.decided_round(v),
            _ => None,
        })
        .collect::<Option<Vec<_>>>()
        .map(|rs| rs.into_iter().max().unwrap_or(0));

    TwoCliqueRun {
        beta,
        bridge_round,
        solve_round: engine.all_decided_round(),
        schedule_total,
        report: check_ccds(&net, &h, &engine.outputs()),
    }
}

/// Sweep rows for the E5b table: solve time vs `Δ` on the two-clique
/// network (averaged over `trials` seeds with randomized bridge
/// placements).
pub fn two_clique_sweep(betas: &[usize], trials: u32, seed: u64) -> Vec<TwoCliqueSummary> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    betas
        .iter()
        .map(|&beta| {
            let mut solve_sum = 0u64;
            let mut bridge_sum = 0u64;
            let mut solved = 0u32;
            let mut valid = 0u32;
            let mut schedule_total = 0u64;
            for t in 0..trials {
                let ba = rng.gen_range(0..beta);
                let bb = rng.gen_range(0..beta);
                let run = run_two_clique(beta, ba, bb, seed ^ (u64::from(t) << 16));
                schedule_total = run.schedule_total;
                if let (Some(s), Some(b)) = (run.solve_round, run.bridge_round) {
                    solved += 1;
                    solve_sum += s;
                    bridge_sum += b;
                }
                if run.report.terminated && run.report.connected && run.report.dominating {
                    valid += 1;
                }
            }
            TwoCliqueSummary {
                beta,
                trials,
                solved,
                valid,
                mean_solve_round: if solved > 0 {
                    solve_sum as f64 / f64::from(solved)
                } else {
                    f64::NAN
                },
                mean_bridge_round: if solved > 0 {
                    bridge_sum as f64 / f64::from(solved)
                } else {
                    f64::NAN
                },
                schedule_total,
            }
        })
        .collect()
}

/// One row of the E5b sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TwoCliqueSummary {
    /// Clique size (`Δ`).
    pub beta: usize,
    /// Trials run.
    pub trials: u32,
    /// Trials in which all processes decided and the bridge joined.
    pub solved: u32,
    /// Trials producing a structure passing the CCDS checker.
    pub valid: u32,
    /// Mean round by which everyone decided.
    pub mean_solve_round: f64,
    /// Mean round by which both bridge endpoints had joined.
    pub mean_bridge_round: f64,
    /// Schedule length for this `Δ` (the Section 6 upper bound's value).
    pub schedule_total: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_clique_run_builds_valid_ccds_with_bridge() {
        let run = run_two_clique(4, 1, 2, 42);
        assert!(run.report.terminated, "undecided: {}", run.report.undecided);
        assert!(run.report.connected);
        assert!(run.report.dominating);
        // Connectivity + domination force the bridge endpoints in.
        assert!(
            run.bridge_round.is_some(),
            "bridge endpoints missing from CCDS"
        );
        assert!(run.solve_round.unwrap() <= run.schedule_total + 1);
    }

    #[test]
    fn schedule_grows_linearly_with_beta() {
        let small = TauConfig::new(8, 4, 1).schedule().total;
        let large = TauConfig::new(32, 16, 1).schedule().total;
        assert!(large > small);
    }
}
