//! The β-single hitting game.
//!
//! An adversary picks a target in `[β]`; a probabilistic automaton outputs
//! one guess per round until it hits the target. The game is the bottom of
//! the paper's reduction chain: identifying an arbitrary element among β
//! requires `Ω(β)` rounds w.h.p. (and `(β+1)/2` guesses in expectation for
//! the best possible strategy), so anything that solves it fast cannot
//! exist — which is how Theorem 7.1 bounds CCDS algorithms from below.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A single-hitting-game player: one guess per round.
pub trait SinglePlayer {
    /// The guess for the given (1-based) round, in `1..=β`.
    fn guess(&mut self, round: u64) -> u32;
}

/// The optimal oblivious strategy: a uniformly random permutation of `[β]`,
/// guessed in order (no repeats). Expected hitting time `(β+1)/2`.
#[derive(Debug, Clone)]
pub struct UniformNoReplacement {
    order: Vec<u32>,
}

impl UniformNoReplacement {
    /// Creates the strategy for domain size `beta` with its own seed.
    pub fn new(beta: u32, seed: u64) -> Self {
        let mut order: Vec<u32> = (1..=beta).collect();
        order.shuffle(&mut StdRng::seed_from_u64(seed));
        UniformNoReplacement { order }
    }
}

impl SinglePlayer for UniformNoReplacement {
    fn guess(&mut self, round: u64) -> u32 {
        let idx = ((round - 1) as usize).min(self.order.len() - 1);
        self.order[idx]
    }
}

/// The deterministic sweep `1, 2, 3, …` — optimal against a uniform random
/// target, worst-case `β` against an adversarial one.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sweep;

impl SinglePlayer for Sweep {
    fn guess(&mut self, round: u64) -> u32 {
        round as u32
    }
}

/// Memoryless uniform guessing (with replacement): expected hitting time
/// `β`, twice the optimum — included as a baseline strategy.
#[derive(Debug)]
pub struct UniformWithReplacement {
    beta: u32,
    rng: StdRng,
}

impl UniformWithReplacement {
    /// Creates the strategy for domain size `beta`.
    pub fn new(beta: u32, seed: u64) -> Self {
        UniformWithReplacement {
            beta,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl SinglePlayer for UniformWithReplacement {
    fn guess(&mut self, _round: u64) -> u32 {
        self.rng.gen_range(1..=self.beta)
    }
}

/// Plays the β-single hitting game: returns the round at which `player`
/// first guesses `target`, or `None` if the budget runs out.
///
/// # Panics
///
/// Panics if `target` is outside `1..=beta`.
pub fn play_single(
    beta: u32,
    target: u32,
    player: &mut dyn SinglePlayer,
    max_rounds: u64,
) -> Option<u64> {
    assert!((1..=beta).contains(&target), "target outside [beta]");
    (1..=max_rounds).find(|&r| player.guess(r) == target)
}

/// The information-theoretic expectation floor for any strategy against a
/// uniform random target: `(β+1)/2` rounds.
pub fn expected_rounds_floor(beta: u32) -> f64 {
    f64::from(beta + 1) / 2.0
}

/// Empirical mean hitting time of a strategy over `trials` uniform random
/// targets (the E5a experiment row).
pub fn mean_hitting_time<F>(beta: u32, trials: u32, seed: u64, mut make_player: F) -> f64
where
    F: FnMut(u64) -> Box<dyn SinglePlayer>,
{
    let mut rng = StdRng::seed_from_u64(seed);
    let mut total = 0u64;
    for t in 0..trials {
        let target = rng.gen_range(1..=beta);
        let mut player = make_player(seed ^ u64::from(t).wrapping_mul(0x9e37_79b9));
        let budget = u64::from(beta) * 8 + 16;
        // Censor at the budget: randomized strategies with replacement can
        // (rarely) run long; censoring only biases the mean downward, which
        // is safe for a lower-bound experiment.
        let rounds = play_single(beta, target, player.as_mut(), budget).unwrap_or(budget);
        total += rounds;
    }
    total as f64 / f64::from(trials)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_hits_at_target() {
        for target in 1..=10 {
            assert_eq!(
                play_single(10, target, &mut Sweep, 100),
                Some(u64::from(target))
            );
        }
    }

    #[test]
    fn permutation_covers_domain() {
        let mut p = UniformNoReplacement::new(16, 3);
        let mut seen: Vec<u32> = (1..=16).map(|r| p.guess(r)).collect();
        seen.sort_unstable();
        assert_eq!(seen, (1..=16).collect::<Vec<_>>());
    }

    #[test]
    fn no_replacement_never_exceeds_beta_rounds() {
        for target in 1..=12 {
            let mut p = UniformNoReplacement::new(12, 9);
            let r = play_single(12, target, &mut p, 12).unwrap();
            assert!(r <= 12);
        }
    }

    #[test]
    fn mean_hitting_time_scales_linearly() {
        // The Ω(β) content of the lower bound, measured: doubling β roughly
        // doubles the mean hitting time of the optimal strategy.
        let m32 = mean_hitting_time(32, 200, 1, |s| Box::new(UniformNoReplacement::new(32, s)));
        let m64 = mean_hitting_time(64, 200, 2, |s| Box::new(UniformNoReplacement::new(64, s)));
        assert!(m32 >= 0.7 * expected_rounds_floor(32));
        assert!(m64 >= 0.7 * expected_rounds_floor(64));
        let ratio = m64 / m32;
        assert!((1.5..=2.7).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn with_replacement_is_worse() {
        let without = mean_hitting_time(48, 300, 5, |s| Box::new(UniformNoReplacement::new(48, s)));
        let with = mean_hitting_time(48, 300, 6, |s| Box::new(UniformWithReplacement::new(48, s)));
        assert!(with > without);
    }

    #[test]
    #[should_panic(expected = "target outside")]
    fn rejects_bad_target() {
        play_single(5, 6, &mut Sweep, 10);
    }
}
