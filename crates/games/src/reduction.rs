//! The two reduction transformations behind Theorem 7.1.
//!
//! **Lemma 7.2 (CCDS → double hitting game).** Given any CCDS algorithm for
//! 1-complete detectors, build two player automata that *cooperatively
//! simulate* it on the two-clique network: player A simulates processes
//! `1..=β` (clique A), player B simulates `β+1..=2β` (clique B). Each player
//! gives its processes the 1-complete detector consistent with the bridge
//! endpoints being the targets. The dual-graph adversary lets each player
//! resolve every round *locally*: if two or more of its processes broadcast,
//! everyone can be made to collide (the adversary activates `G'` edges); if
//! exactly one broadcasts, the whole clique receives it — and the player
//! *guesses that process's id*, because the only event that could leak
//! information between cliques is a bridge endpoint broadcasting alone,
//! which is exactly a correct guess. When a simulated clique terminates, the
//! player guesses its CCDS members (constant-bounded, so `O(1)` extra
//! rounds): domination+connectivity force the bridge endpoints into the
//! CCDS.
//!
//! **Lemma 7.3 (double → single).** The cross-inputs allow coordination, so
//! one player alone isn't a single-game solver. Instead: for every target
//! pair `(x, y)` one of the two players must hit fast w.h.p. (their failure
//! probabilities multiply); tabulate the "winner" over the `2β × 2β` grid,
//! find a column with ≥ β A-winners (or a row with ≥ β B-winners), and the
//! winning automaton restricted to that column, with its guesses mapped
//! through a bijection `ψ`, solves the β-single hitting game. Since that
//! game needs `Ω(β)` rounds, the CCDS algorithm needed `Ω(Δ)`.

use crate::double::DoublePlayer;
use crate::single::SinglePlayer;
use radio_sim::ProcessRng;
use radio_sim::{Context, MessageSize, Process, ProcessId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, VecDeque};

/// Which clique a [`CliquePlayer`] simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CliqueRole {
    /// Processes `1..=β` (guesses are their ids directly).
    A,
    /// Processes `β+1..=2β` (guesses are normalized by subtracting β).
    B,
}

/// The Lemma 7.2 player: one clique of a CCDS algorithm, simulated as a
/// double-hitting-game automaton.
///
/// Generic over the algorithm's [`Process`] type, because the lemma holds
/// for *any* CCDS algorithm; the experiments instantiate it with
/// `radio_structures::TauCcds` (our τ = 1 algorithm).
pub struct CliquePlayer<P: Process> {
    procs: Vec<P>,
    detectors: Vec<BTreeSet<u32>>,
    ids: Vec<u32>,
    rngs: Vec<ProcessRng>,
    n_total: usize,
    beta: u32,
    role: CliqueRole,
    local_round: u64,
    halted: bool,
    terminal_guesses: VecDeque<u32>,
    /// Rounds of simulation executed (for complexity accounting).
    pub sim_rounds: u64,
}

impl<P: Process> CliquePlayer<P> {
    /// Builds the player for `role`, given the *opponent's* target (the
    /// only input the double hitting game provides) and a factory producing
    /// the algorithm's process for a given id/detector.
    ///
    /// `other_target` must be in `1..=β`; it names the opposite clique's
    /// bridge endpoint (local index).
    pub fn new<F>(role: CliqueRole, beta: u32, other_target: u32, seed: u64, mut factory: F) -> Self
    where
        F: FnMut(ProcessId, &BTreeSet<u32>, usize) -> P,
    {
        assert!((1..=beta).contains(&other_target), "target outside [beta]");
        let n_total = 2 * beta as usize;
        let (lo, _hi, foreign) = match role {
            // Clique A holds ids 1..=β; its spurious detector entry is the
            // bridge endpoint in clique B, process `other_target + β`.
            CliqueRole::A => (1u32, beta, other_target + beta),
            // Clique B holds ids β+1..=2β; its spurious entry is process
            // `other_target` in clique A.
            CliqueRole::B => (beta + 1, 2 * beta, other_target),
        };
        let ids: Vec<u32> = (0..beta).map(|k| lo + k).collect();
        let mut master = StdRng::seed_from_u64(seed);
        let mut procs = Vec::with_capacity(beta as usize);
        let mut detectors = Vec::with_capacity(beta as usize);
        let mut rngs = Vec::with_capacity(beta as usize);
        for &id in &ids {
            let mut det: BTreeSet<u32> = ids.iter().copied().filter(|&j| j != id).collect();
            det.insert(foreign);
            let pid = ProcessId::new_unchecked(id);
            procs.push(factory(pid, &det, n_total));
            detectors.push(det);
            rngs.push(ProcessRng::seed_from_u64(master.gen()));
        }
        CliquePlayer {
            procs,
            detectors,
            ids,
            rngs,
            n_total,
            beta,
            role,
            local_round: 0,
            halted: false,
            terminal_guesses: VecDeque::new(),
            sim_rounds: 0,
        }
    }

    fn normalize(&self, id: u32) -> u32 {
        match self.role {
            CliqueRole::A => id,
            CliqueRole::B => id - self.beta,
        }
    }
}

impl<P: Process> DoublePlayer for CliquePlayer<P> {
    fn guess(&mut self, _round: u64) -> Option<u32> {
        if self.halted {
            return self.terminal_guesses.pop_front();
        }
        self.local_round += 1;
        self.sim_rounds += 1;
        let k = self.procs.len();

        // Simulated decide phase.
        let mut messages: Vec<Option<P::Msg>> = Vec::with_capacity(k);
        for i in 0..k {
            let mut ctx = Context {
                local_round: self.local_round,
                n: self.n_total,
                my_id: ProcessId::new_unchecked(self.ids[i]),
                detector: &self.detectors[i],
                rng: &mut self.rngs[i],
            };
            match self.procs[i].decide(&mut ctx) {
                radio_sim::Action::Broadcast(m) => {
                    let _ = m.bits();
                    messages.push(Some(m));
                }
                radio_sim::Action::Idle => messages.push(None),
            }
        }
        let broadcasters: Vec<usize> = (0..k).filter(|&i| messages[i].is_some()).collect();

        // Delivery per the proof's adversary: a lone broadcaster reaches its
        // whole clique (and is this round's guess); otherwise everyone
        // observes ⊥ (the adversary manufactures collisions with G' edges).
        let mut guess = None;
        for i in 0..k {
            if messages[i].is_some() {
                continue; // broadcasters receive only their own message
            }
            let delivered = if broadcasters.len() == 1 {
                messages[broadcasters[0]].as_ref()
            } else {
                None
            };
            let mut ctx = Context {
                local_round: self.local_round,
                n: self.n_total,
                my_id: ProcessId::new_unchecked(self.ids[i]),
                detector: &self.detectors[i],
                rng: &mut self.rngs[i],
            };
            self.procs[i].receive(&mut ctx, delivered);
        }
        if broadcasters.len() == 1 {
            guess = Some(self.normalize(self.ids[broadcasters[0]]));
        }

        // Termination: queue a guess per CCDS member (constant-bounded, so
        // this takes O(1) rounds).
        if self.procs.iter().all(|p| p.output().is_some()) {
            self.halted = true;
            for i in 0..k {
                if self.procs[i].output() == Some(true) {
                    let g = self.normalize(self.ids[i]);
                    self.terminal_guesses.push_back(g);
                }
            }
            if guess.is_none() {
                guess = self.terminal_guesses.pop_front();
            }
        }
        guess
    }
}

/// The Lemma 7.3 winner table over target pairs `(t_a, t_b) ∈ [β]²`.
#[derive(Debug, Clone)]
pub struct WinnerTable {
    beta: u32,
    /// `winner_is_a[x-1][y-1]` for targets `t_a = x`, `t_b = y`.
    winner_is_a: Vec<Vec<bool>>,
}

impl WinnerTable {
    /// Estimates the table by Monte-Carlo: for each pair, whichever player
    /// hits its target within `budget` rounds in the majority of `trials`
    /// runs is the winner (ties default to A, as in the lemma).
    pub fn estimate<FA, FB>(
        beta: u32,
        trials: u32,
        budget: u64,
        seed: u64,
        mut make_a: FA,
        mut make_b: FB,
    ) -> Self
    where
        FA: FnMut(u32, u64) -> Box<dyn DoublePlayer>,
        FB: FnMut(u32, u64) -> Box<dyn DoublePlayer>,
    {
        let mut winner_is_a = vec![vec![false; beta as usize]; beta as usize];
        for x in 1..=beta {
            for y in 1..=beta {
                let mut a_hits = 0u32;
                let mut b_hits = 0u32;
                for t in 0..trials {
                    let s = seed
                        ^ (u64::from(x) << 40)
                        ^ (u64::from(y) << 20)
                        ^ u64::from(t).wrapping_mul(0x9e37_79b9);
                    let mut pa = make_a(y, s);
                    let mut pb = make_b(x, s.wrapping_add(1));
                    let mut a_hit = false;
                    let mut b_hit = false;
                    for r in 1..=budget {
                        if pa.guess(r) == Some(x) {
                            a_hit = true;
                        }
                        if pb.guess(r) == Some(y) {
                            b_hit = true;
                        }
                        if a_hit || b_hit {
                            break;
                        }
                    }
                    if a_hit {
                        a_hits += 1;
                    }
                    if b_hit {
                        b_hits += 1;
                    }
                }
                winner_is_a[(x - 1) as usize][(y - 1) as usize] = a_hits >= b_hits;
            }
        }
        WinnerTable { beta, winner_is_a }
    }

    /// The lemma's counting step: a column `y` with at least `β/2` A-wins,
    /// or a row `x` with at least `β/2` B-wins (over the β×β table the
    /// halves are guaranteed by pigeonhole).
    pub fn extract(&self) -> SingleConstruction {
        let beta = self.beta as usize;
        for y in 0..beta {
            let a_count = (0..beta).filter(|&x| self.winner_is_a[x][y]).count();
            if 2 * a_count >= beta {
                let targets = (0..beta)
                    .filter(|&x| self.winner_is_a[x][y])
                    .map(|x| (x + 1) as u32)
                    .collect();
                return SingleConstruction::FromColumn {
                    y: (y + 1) as u32,
                    targets,
                };
            }
        }
        // Pigeonhole: some row must then be majority-B.
        for x in 0..beta {
            let b_count = (0..beta).filter(|&y| !self.winner_is_a[x][y]).count();
            if 2 * b_count >= beta {
                let targets = (0..beta)
                    .filter(|&y| !self.winner_is_a[x][y])
                    .map(|y| (y + 1) as u32)
                    .collect();
                return SingleConstruction::FromRow {
                    x: (x + 1) as u32,
                    targets,
                };
            }
        }
        unreachable!("pigeonhole guarantees a majority column or row");
    }

    /// Whether A is the winner for targets `(t_a, t_b)`.
    pub fn winner_is_a(&self, t_a: u32, t_b: u32) -> bool {
        self.winner_is_a[(t_a - 1) as usize][(t_b - 1) as usize]
    }
}

/// The single-player construction extracted from a [`WinnerTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SingleConstruction {
    /// Simulate player A with input `y`; its guesses, restricted to
    /// `targets` and mapped through `ψ`, solve the single game.
    FromColumn {
        /// The fixed cross-input fed to A.
        y: u32,
        /// The target subset `S_y` (A-winning rows).
        targets: Vec<u32>,
    },
    /// Symmetric: simulate player B with input `x`.
    FromRow {
        /// The fixed cross-input fed to B.
        x: u32,
        /// The target subset (B-winning columns).
        targets: Vec<u32>,
    },
}

impl SingleConstruction {
    /// Size of the single game this construction solves (`|targets|`).
    pub fn domain(&self) -> u32 {
        match self {
            SingleConstruction::FromColumn { targets, .. }
            | SingleConstruction::FromRow { targets, .. } => targets.len() as u32,
        }
    }
}

/// The `P_{A,B}` automaton of Lemma 7.3: a double-game player with a fixed
/// cross-input, with guesses mapped through the bijection `ψ : S → [|S|]`.
pub struct SingleFromDouble {
    inner: Box<dyn DoublePlayer>,
    /// Sorted target subset; `ψ(targets[k]) = k+1`.
    targets: Vec<u32>,
}

impl SingleFromDouble {
    /// Wraps a double-game player (already constructed with the fixed
    /// cross-input) and the target subset from the winner table.
    pub fn new(inner: Box<dyn DoublePlayer>, mut targets: Vec<u32>) -> Self {
        targets.sort_unstable();
        SingleFromDouble { inner, targets }
    }

    /// The single-game domain size.
    pub fn domain(&self) -> u32 {
        self.targets.len() as u32
    }
}

impl SinglePlayer for SingleFromDouble {
    fn guess(&mut self, round: u64) -> u32 {
        match self.inner.guess(round) {
            Some(g) => match self.targets.binary_search(&g) {
                Ok(k) => (k + 1) as u32, // ψ(g)
                Err(_) => 0,             // outside S: never a hit
            },
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::double::{play_double, SweepPlayer};
    use crate::single::play_single;
    use radio_structures::{TauCcds, TauConfig};

    fn tau_player(role: CliqueRole, beta: u32, other: u32, seed: u64) -> CliquePlayer<TauCcds> {
        let cfg = TauConfig::new(2 * beta as usize, beta as usize, 1);
        CliquePlayer::new(role, beta, other, seed, move |pid, _det, _n| {
            TauCcds::new(&cfg, pid)
        })
    }

    #[test]
    fn ccds_simulation_solves_the_double_game() {
        // Lemma 7.2, end to end: simulating our τ=1 CCDS algorithm as two
        // clique players solves the double hitting game.
        let beta = 4u32;
        let cfg = TauConfig::new(2 * beta as usize, beta as usize, 1);
        let budget = cfg.schedule().total + 64;
        let mut solved = 0;
        let pairs = [(1u32, 1u32), (2, 3), (4, 2)];
        for (i, &(t_a, t_b)) in pairs.iter().enumerate() {
            let mut pa = tau_player(CliqueRole::A, beta, t_b, 100 + i as u64);
            let mut pb = tau_player(CliqueRole::B, beta, t_a, 200 + i as u64);
            let out = play_double(beta, t_a, t_b, &mut pa, &mut pb, budget);
            if out.solved_at.is_some() {
                solved += 1;
            }
        }
        assert_eq!(solved, pairs.len(), "every pair should solve w.h.p.");
    }

    #[test]
    fn winner_table_extraction_is_well_formed() {
        let beta = 6u32;
        let table = WinnerTable::estimate(
            beta,
            3,
            64,
            9,
            |_, s| Box::new(SweepPlayer::new(beta, s)),
            |_, s| Box::new(SweepPlayer::new(beta, s)),
        );
        let construction = table.extract();
        assert!(construction.domain() >= beta / 2);
    }

    #[test]
    fn single_from_double_solves_the_single_game() {
        // Lemma 7.3 with sweep players: fix the cross-input, map guesses
        // through ψ, and the result is a legitimate single-game player.
        let beta = 8u32;
        let table = WinnerTable::estimate(
            beta,
            3,
            64,
            5,
            |_, s| Box::new(SweepPlayer::new(beta, s)),
            |_, s| Box::new(SweepPlayer::new(beta, s)),
        );
        match table.extract() {
            SingleConstruction::FromColumn { y, targets } => {
                let domain = targets.len() as u32;
                for t in 1..=domain {
                    let mut p = SingleFromDouble::new(
                        Box::new(SweepPlayer::new(beta, u64::from(y))),
                        targets.clone(),
                    );
                    // The sweep player enumerates all of [β], so ψ(guesses)
                    // covers [domain] within β rounds.
                    let hit = play_single(domain, t, &mut p, u64::from(beta) + 4);
                    assert!(hit.is_some(), "target {t} not hit");
                }
            }
            SingleConstruction::FromRow { x, targets } => {
                let domain = targets.len() as u32;
                for t in 1..=domain {
                    let mut p = SingleFromDouble::new(
                        Box::new(SweepPlayer::new(beta, u64::from(x))),
                        targets.clone(),
                    );
                    let hit = play_single(domain, t, &mut p, u64::from(beta) + 4);
                    assert!(hit.is_some(), "target {t} not hit");
                }
            }
        }
    }

    #[test]
    fn full_theorem_pipeline_with_real_ccds_players() {
        // The complete Thm 7.1 chain, instantiated: CCDS algorithm →
        // (Lemma 7.2) clique players → (Lemma 7.3) winner table → single
        // hitting game solver. β is tiny because the winner table costs
        // β² · trials full simulations.
        let beta = 3u32;
        let cfg = TauConfig::new(2 * beta as usize, beta as usize, 1);
        let budget = cfg.schedule().total + 32;
        let make_a = |other: u32, seed: u64| -> Box<dyn DoublePlayer> {
            Box::new(CliquePlayer::new(
                CliqueRole::A,
                beta,
                other,
                seed,
                move |pid, _d, _n| TauCcds::new(&cfg, pid),
            ))
        };
        let make_b = |other: u32, seed: u64| -> Box<dyn DoublePlayer> {
            Box::new(CliquePlayer::new(
                CliqueRole::B,
                beta,
                other,
                seed,
                move |pid, _d, _n| TauCcds::new(&cfg, pid),
            ))
        };
        let table = WinnerTable::estimate(beta, 2, budget, 31, make_a, make_b);
        let construction = table.extract();
        let domain = construction.domain();
        assert!(domain >= 1);
        // Build the single-game player and verify it hits every target in
        // its domain within the double game's budget.
        let (targets, inner): (Vec<u32>, Box<dyn DoublePlayer>) = match construction {
            SingleConstruction::FromColumn { y, targets } => {
                let p = CliquePlayer::new(CliqueRole::A, beta, y, 77, move |pid, _d, _n| {
                    TauCcds::new(&cfg, pid)
                });
                (targets, Box::new(p))
            }
            SingleConstruction::FromRow { x, targets } => {
                let p = CliquePlayer::new(CliqueRole::B, beta, x, 78, move |pid, _d, _n| {
                    TauCcds::new(&cfg, pid)
                });
                (targets, Box::new(p))
            }
        };
        // One fixed automaton run can only be checked against one target;
        // verify it hits at least one element of its domain (the CCDS puts
        // every clique member or the bridge in play across the run).
        let mut player = SingleFromDouble::new(inner, targets);
        let mut hits = std::collections::BTreeSet::new();
        for r in 1..=budget {
            let g = player.guess(r);
            if (1..=domain).contains(&g) {
                hits.insert(g);
            }
        }
        assert!(
            !hits.is_empty(),
            "the constructed single player never guessed in-domain"
        );
    }

    #[test]
    fn clique_player_guesses_stay_in_range() {
        let beta = 4u32;
        let mut pa = tau_player(CliqueRole::A, beta, 2, 77);
        let mut pb = tau_player(CliqueRole::B, beta, 3, 78);
        for r in 1..=2000 {
            if let Some(g) = pa.guess(r) {
                assert!((1..=beta).contains(&g), "A guessed {g}");
            }
            if let Some(g) = pb.guess(r) {
                assert!((1..=beta).contains(&g), "B guessed {g}");
            }
        }
    }
}
