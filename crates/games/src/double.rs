//! The β-double hitting game.
//!
//! Two players `A` and `B`, modeled as probabilistic automata, are given
//! *each other's* targets (`P_A` learns `t_B`, `P_B` learns `t_A`) and then
//! run with **no further communication**, each outputting at most one guess
//! per round. The game is solved when `P_A` outputs `t_A` or `P_B` outputs
//! `t_B`.
//!
//! The cross-inputs are what make the reduction from CCDS work (each
//! simulated clique knows the *other* clique's bridge endpoint via its link
//! detector), and also what makes the drop to the single-player game
//! (Lemma 7.3) non-trivial: the players could use the inputs to coordinate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A double-hitting-game player automaton.
///
/// Implementations receive the opponent's target at construction time (that
/// is the only communication the game permits) and then emit at most one
/// guess per round.
pub trait DoublePlayer {
    /// The player's guess for the given (1-based) round, if it makes one.
    fn guess(&mut self, round: u64) -> Option<u32>;
}

/// Outcome of a double hitting game.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DoubleOutcome {
    /// Round at which the game was solved (`None` if the budget ran out).
    pub solved_at: Option<u64>,
    /// Whether player A's guess solved it (meaningful when solved).
    pub solved_by_a: bool,
}

/// Plays the β-double hitting game with the given target pair.
///
/// # Panics
///
/// Panics if a target is outside `1..=beta`.
pub fn play_double(
    beta: u32,
    t_a: u32,
    t_b: u32,
    player_a: &mut dyn DoublePlayer,
    player_b: &mut dyn DoublePlayer,
    max_rounds: u64,
) -> DoubleOutcome {
    assert!((1..=beta).contains(&t_a), "t_a outside [beta]");
    assert!((1..=beta).contains(&t_b), "t_b outside [beta]");
    for r in 1..=max_rounds {
        let a = player_a.guess(r);
        let b = player_b.guess(r);
        // Both players act in the same round; either hit solves the game.
        if a == Some(t_a) {
            return DoubleOutcome {
                solved_at: Some(r),
                solved_by_a: true,
            };
        }
        if b == Some(t_b) {
            return DoubleOutcome {
                solved_at: Some(r),
                solved_by_a: false,
            };
        }
    }
    DoubleOutcome {
        solved_at: None,
        solved_by_a: false,
    }
}

/// A simple direct strategy: each player sweeps `[β]` in a pseudorandom
/// order seeded by its own identity (ignoring the cross-input). Solves the
/// game in at most `β` rounds; expected ≈ `(β+1)/2 · 1/2 + …` — the point is
/// that *no* strategy beats `Ω(β)`, which [`crate::reduction`] inherits.
#[derive(Debug, Clone)]
pub struct SweepPlayer {
    order: Vec<u32>,
    cursor: usize,
}

impl SweepPlayer {
    /// Creates a player that guesses a seeded random permutation of `[β]`.
    pub fn new(beta: u32, seed: u64) -> Self {
        use rand::seq::SliceRandom;
        let mut order: Vec<u32> = (1..=beta).collect();
        order.shuffle(&mut StdRng::seed_from_u64(seed));
        SweepPlayer { order, cursor: 0 }
    }
}

impl DoublePlayer for SweepPlayer {
    fn guess(&mut self, _round: u64) -> Option<u32> {
        let g = self.order.get(self.cursor).copied();
        self.cursor += 1;
        g
    }
}

/// Mean solve time over `trials` uniformly random target pairs — the
/// measured complexity of a double-hitting-game strategy.
pub fn mean_double_solve_time<FA, FB>(
    beta: u32,
    trials: u32,
    seed: u64,
    mut make_a: FA,
    mut make_b: FB,
) -> f64
where
    FA: FnMut(u32, u64) -> Box<dyn DoublePlayer>, // (t_b input, seed)
    FB: FnMut(u32, u64) -> Box<dyn DoublePlayer>, // (t_a input, seed)
{
    let mut rng = StdRng::seed_from_u64(seed);
    let budget = u64::from(beta) * 8 + 16;
    let mut total = 0u64;
    for t in 0..trials {
        let t_a = rng.gen_range(1..=beta);
        let t_b = rng.gen_range(1..=beta);
        let s = seed ^ u64::from(t).wrapping_mul(0x9e37_79b9);
        let mut a = make_a(t_b, s);
        let mut b = make_b(t_a, s.wrapping_add(1));
        let out = play_double(beta, t_a, t_b, a.as_mut(), b.as_mut(), budget);
        total += out.solved_at.unwrap_or(budget);
    }
    total as f64 / f64::from(trials)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_pair_always_solves_within_beta() {
        for t_a in 1..=8 {
            for t_b in 1..=8 {
                let mut a = SweepPlayer::new(8, 1);
                let mut b = SweepPlayer::new(8, 2);
                let out = play_double(8, t_a, t_b, &mut a, &mut b, 8);
                assert!(out.solved_at.is_some(), "unsolved for ({t_a}, {t_b})");
            }
        }
    }

    #[test]
    fn two_players_beat_one_on_average() {
        // Two independent sweeps: the minimum of two hitting times.
        let double = mean_double_solve_time(
            64,
            300,
            7,
            |_, s| Box::new(SweepPlayer::new(64, s)),
            |_, s| Box::new(SweepPlayer::new(64, s)),
        );
        let single = crate::single::mean_hitting_time(64, 300, 8, |s| {
            Box::new(crate::single::UniformNoReplacement::new(64, s))
        });
        assert!(double < single);
        // ...but still Ω(β): min of two uniform order statistics ≈ β/3.
        assert!(double >= f64::from(64) / 6.0, "double = {double}");
    }

    #[test]
    fn mean_scales_linearly_in_beta() {
        let m32 = mean_double_solve_time(
            32,
            300,
            3,
            |_, s| Box::new(SweepPlayer::new(32, s)),
            |_, s| Box::new(SweepPlayer::new(32, s)),
        );
        let m128 = mean_double_solve_time(
            128,
            300,
            4,
            |_, s| Box::new(SweepPlayer::new(128, s)),
            |_, s| Box::new(SweepPlayer::new(128, s)),
        );
        let ratio = m128 / m32;
        assert!((2.8..=5.5).contains(&ratio), "ratio {ratio}");
    }
}
