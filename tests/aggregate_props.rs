//! Differential property tests for the streaming statistics layer: the
//! single-pass accumulators ([`Welford`], [`StreamingSummary`],
//! [`P2Quantile`]) must agree with the naive two-pass / sorted references
//! in `radio_bench::stats`, and accumulator `merge` must be associative
//! and order-independent across arbitrary stream splits.

use proptest::prelude::*;
use radio_bench::stats::{mean, stddev, P2Quantile, StreamingSummary, Welford, EXACT_QUANTILE_CAP};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic random inputs: proptest samples only scalars, so the
/// vector itself derives from a sampled seed.
fn random_values(seed: u64, len: usize, scale: f64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| (rng.gen::<f64>() - 0.5) * scale).collect()
}

/// Naive sorted-reference quantile, reimplemented here (R-7 linear
/// interpolation) so the test does not share code with the accumulator.
fn reference_quantile(xs: &[f64], q: f64) -> f64 {
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let h = (n - 1) as f64 * q;
    let lo = sorted[h.floor() as usize];
    let hi = sorted[h.ceil() as usize];
    lo + (h - h.floor()) * (hi - lo)
}

/// |a − b| within `tol`, absolutely or relative to |b|.
fn close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol * b.abs().max(1.0)
}

/// Splits `xs` at sampled cut points into (possibly empty) consecutive
/// chunks, one accumulator per chunk.
fn chunk_summaries(xs: &[f64], cuts: &[usize]) -> Vec<StreamingSummary> {
    let mut bounds: Vec<usize> = cuts.iter().map(|&c| c % (xs.len() + 1)).collect();
    bounds.push(0);
    bounds.push(xs.len());
    bounds.sort_unstable();
    bounds
        .windows(2)
        .map(|w| {
            let mut s = StreamingSummary::new();
            xs[w[0]..w[1]].iter().for_each(|&x| s.push(x));
            s
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Welford agrees with the naive two-pass mean/stddev to 1e-9.
    #[test]
    fn welford_matches_two_pass_reference(
        seed in 0u64..1_000_000,
        len in 2usize..400,
        scale in 1.0f64..1e6,
    ) {
        let xs = random_values(seed, len, scale);
        let mut w = Welford::new();
        xs.iter().for_each(|&x| w.push(x));
        prop_assert_eq!(w.count(), xs.len() as u64);
        prop_assert!(close(w.mean(), mean(&xs), 1e-9));
        prop_assert!(close(w.stddev(), stddev(&xs), 1e-9));
    }

    /// Exact-mode percentiles agree with the independently-implemented
    /// sorted reference to 1e-9.
    #[test]
    fn summary_percentiles_match_sorted_reference(
        seed in 0u64..1_000_000,
        len in 1usize..500,
        scale in 1.0f64..1e6,
    ) {
        let xs = random_values(seed, len, scale);
        let mut s = StreamingSummary::new();
        xs.iter().for_each(|&x| s.push(x));
        for q in [0.5, 0.9, 0.99] {
            prop_assert!(
                close(s.quantile(q), reference_quantile(&xs, q), 1e-9),
                "q={} acc={} ref={}", q, s.quantile(q), reference_quantile(&xs, q)
            );
        }
        let sorted_min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let sorted_max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(s.min(), sorted_min);
        prop_assert_eq!(s.max(), sorted_max);
    }

    /// Merging chunked accumulators — any split, any grouping — agrees
    /// with the single-pass fold to 1e-9 on every statistic.
    #[test]
    fn summary_merge_is_order_independent_across_splits(
        seed in 0u64..1_000_000,
        len in 1usize..300,
        cut1 in 0usize..1000,
        cut2 in 0usize..1000,
        cut3 in 0usize..1000,
        scale in 1.0f64..1e4,
    ) {
        let xs = random_values(seed, len, scale);
        let mut whole = StreamingSummary::new();
        xs.iter().for_each(|&x| whole.push(x));

        let parts = chunk_summaries(&xs, &[cut1, cut2, cut3]);
        // Left fold: ((a ∪ b) ∪ c) ∪ d …
        let mut left = StreamingSummary::new();
        parts.iter().for_each(|p| left.merge(p));
        // Right-leaning fold: a ∪ (b ∪ (c ∪ d)) …
        let mut right = StreamingSummary::new();
        for p in parts.iter().rev() {
            let mut tail = p.clone();
            tail.merge(&right);
            right = tail;
        }

        for combined in [&left, &right] {
            prop_assert_eq!(combined.count(), whole.count());
            prop_assert!(close(combined.mean(), whole.mean(), 1e-9));
            if whole.count() >= 2 {
                prop_assert!(close(combined.variance(), whole.variance(), 1e-9));
            }
            prop_assert_eq!(combined.min(), whole.min());
            prop_assert_eq!(combined.max(), whole.max());
            // Below the collapse cap every partial keeps raw samples, so
            // merged percentiles are exact — not just close.
            for q in [0.5, 0.9, 0.99] {
                prop_assert!(
                    close(combined.quantile(q), whole.quantile(q), 1e-9),
                    "q={}", q
                );
            }
        }
    }

    /// Welford merge alone is associative to 1e-9.
    #[test]
    fn welford_merge_is_associative(
        seed in 0u64..1_000_000,
        len in 3usize..300,
        cut1 in 0usize..1000,
        cut2 in 0usize..1000,
        scale in 1.0f64..1e4,
    ) {
        let xs = random_values(seed, len, scale);
        let a_end = cut1 % (len + 1);
        let b_end = a_end + cut2 % (len - a_end + 1);
        let fold = |slice: &[f64]| {
            let mut w = Welford::new();
            slice.iter().for_each(|&x| w.push(x));
            w
        };
        let (a, b, c) = (fold(&xs[..a_end]), fold(&xs[a_end..b_end]), fold(&xs[b_end..]));
        // (a ∪ b) ∪ c
        let mut ab = a;
        ab.merge(&b);
        ab.merge(&c);
        // a ∪ (b ∪ c)
        let mut bc = b;
        bc.merge(&c);
        let mut a_bc = a;
        a_bc.merge(&bc);
        prop_assert_eq!(ab.count(), a_bc.count());
        if ab.count() > 0 {
            prop_assert!(close(ab.mean(), a_bc.mean(), 1e-9));
        }
        if ab.count() >= 2 {
            prop_assert!(close(ab.variance(), a_bc.variance(), 1e-9));
        }
    }

    /// Shard-merged accumulators equal the single-run fold **bit for
    /// bit** — for arbitrary shard counts and both merge nestings (left
    /// fold and right-leaning) — because ordered merges replay the raw
    /// samples. This is the invariant `radio-lab merge` stands on.
    #[test]
    fn shard_merge_equals_single_fold_bitwise(
        seed in 0u64..1_000_000,
        len in 1usize..400,
        shards in 1usize..12,
        scale in 1.0f64..1e6,
    ) {
        let xs = random_values(seed, len, scale);
        let mut whole = StreamingSummary::new();
        xs.iter().for_each(|&x| whole.push(x));
        // Contiguous balanced shard slices, like checkpoint::shard_range.
        let parts: Vec<StreamingSummary> = (0..shards)
            .map(|i| {
                let (lo, hi) = (i * len / shards, (i + 1) * len / shards);
                let mut s = StreamingSummary::new();
                xs[lo..hi].iter().for_each(|&x| s.push(x));
                s
            })
            .collect();
        // Left fold: ((s0 ∪ s1) ∪ s2) ∪ …
        let mut left = StreamingSummary::new();
        parts.iter().for_each(|p| left.merge(p));
        // Right-leaning: s0 ∪ (s1 ∪ (s2 ∪ …)).
        let mut right = StreamingSummary::new();
        for p in parts.iter().rev() {
            let mut tail = p.clone();
            tail.merge(&right);
            right = tail;
        }
        for (label, merged) in [("left", &left), ("right", &right)] {
            prop_assert_eq!(merged.count(), whole.count(), "{} nesting", label);
            prop_assert_eq!(
                merged.mean().to_bits(), whole.mean().to_bits(), "{} nesting", label
            );
            if whole.count() >= 2 {
                prop_assert_eq!(
                    merged.variance().to_bits(), whole.variance().to_bits(),
                    "{} nesting", label
                );
            }
            prop_assert_eq!(merged.min().to_bits(), whole.min().to_bits());
            prop_assert_eq!(merged.max().to_bits(), whole.max().to_bits());
            for q in [0.5, 0.9, 0.99] {
                prop_assert_eq!(
                    merged.quantile(q).to_bits(), whole.quantile(q).to_bits(),
                    "{} nesting, q={}", label, q
                );
            }
        }
    }

    /// Accumulators survive a serialize/deserialize round-trip
    /// bit-for-bit and keep folding identically afterwards — what a
    /// checkpointed sweep's restore relies on.
    #[test]
    fn summary_roundtrips_through_serde_and_keeps_folding(
        seed in 0u64..1_000_000,
        len in 0usize..300,
        extra in 1usize..50,
        scale in 1.0f64..1e6,
    ) {
        let xs = random_values(seed, len + extra, scale);
        let mut s = StreamingSummary::new();
        xs[..len].iter().for_each(|&x| s.push(x));
        let json = serde_json::to_string(&s).expect("summary serializes");
        let mut restored: StreamingSummary =
            serde_json::from_str(&json).expect("summary parses");
        prop_assert_eq!(&restored, &s);
        // Continue both folds: they must stay indistinguishable.
        for &x in &xs[len..] {
            s.push(x);
            restored.push(x);
        }
        prop_assert_eq!(&restored, &s);
        prop_assert_eq!(restored.quantile(0.9).to_bits(), s.quantile(0.9).to_bits());
    }

    /// Past the exact cap the collapsed P² percentile stays a sane
    /// estimate, and ordered chunked merges reproduce the sequential feed
    /// bit-for-bit (the collapse replays arrival order).
    #[test]
    fn collapsed_summary_is_deterministic_and_sane(
        seed in 0u64..1_000_000,
        extra in 1usize..600,
    ) {
        let xs = random_values(seed, EXACT_QUANTILE_CAP + extra, 1000.0);
        let mut sequential = StreamingSummary::new();
        xs.iter().for_each(|&x| sequential.push(x));
        let mut chunked = StreamingSummary::new();
        for chunk in xs.chunks(97) {
            let mut part = StreamingSummary::new();
            chunk.iter().for_each(|&x| part.push(x));
            chunked.merge(&part);
        }
        prop_assert_eq!(
            chunked.median().to_bits(),
            sequential.median().to_bits()
        );
        prop_assert_eq!(chunked.p90().to_bits(), sequential.p90().to_bits());
        // P² is an estimator: compare to the exact quantile loosely
        // (uniform inputs, >1000 samples — classic convergence regime).
        let exact = reference_quantile(&xs, 0.5);
        prop_assert!(
            (sequential.median() - exact).abs() < 50.0,
            "P2 median {} drifted from exact {}", sequential.median(), exact
        );
    }
}

/// The standalone P² estimator tracks a moving stream with O(1) state —
/// spot-check convergence on a deterministic uniform stream (the classic
/// worked example lives in the `stats` unit tests).
#[test]
fn p2_estimator_converges_across_quantiles() {
    let xs = random_values(42, 20_000, 2.0); // uniform-ish in [-1, 1]
    for q in [0.5, 0.9, 0.99] {
        let mut p2 = P2Quantile::new(q);
        xs.iter().for_each(|&x| p2.observe(x));
        let exact = reference_quantile(&xs, q);
        assert!(
            (p2.estimate() - exact).abs() < 0.05,
            "q={q}: p2={} exact={exact}",
            p2.estimate()
        );
    }
}
