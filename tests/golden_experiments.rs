//! Golden-equivalence tests: the declarative `ScenarioSpec` registry must
//! reproduce the pre-refactor imperative experiment sweeps **byte for
//! byte** at quick scale.
//!
//! The functions below are the imperative E1-E11 bodies exactly as they
//! existed before the scenario subsystem replaced them (same grids, same
//! seed schedules, same formatting). Each test renders both sides and
//! compares the text; any drift in the planner's expansion order, seed
//! derivation, or a renderer's formatting fails here first.

#![allow(clippy::too_many_lines)]

use hitting_games::{
    expected_rounds_floor, mean_hitting_time, two_clique_sweep, UniformNoReplacement,
    UniformWithReplacement,
};
use radio_baselines::{DecayBroadcast, NaiveCcdsConfig, RoundRobinBroadcast};
use radio_bench::run_trials;
use radio_bench::stats::loglog_exponent;
use radio_bench::table::{f1, f3};
use radio_bench::Table;
use radio_sim::topology::{grid, random_geometric, GridConfig, RandomGeometricConfig};
use radio_sim::{
    DualGraph, DynamicDetector, EngineBuilder, Graph, IdAssignment, LinkDetectorAssignment, NodeId,
    SpuriousSource, StopReason,
};
use radio_structures::checker::{check_ccds, density_bound, mis_density_within};
use radio_structures::params::{ceil_log2, MisParams};
use radio_structures::runner::{run_ccds, run_mis, run_tau_ccds, AdversaryKind};
use radio_structures::{
    AsyncFilter, AsyncMis, AsyncMisParams, CcdsConfig, ContinuousCcds, TauConfig,
};
use rand::SeedableRng;

fn log3(n: usize) -> f64 {
    let l = f64::from(ceil_log2(n));
    l * l * l
}

fn geometric(n: usize, seed: u64) -> DualGraph {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    random_geometric(&RandomGeometricConfig::dense(n), &mut rng)
        .expect("dense configuration connects")
}

/// E1 (Theorem 4.6): MIS solve rounds vs `n` — the `O(log³ n)` claim.
fn e1_mis_scaling(quick: bool) -> Table {
    let ns: &[usize] = if quick {
        &[32, 64]
    } else {
        &[32, 64, 128, 256, 512]
    };
    let trials: u64 = if quick { 2 } else { 5 };
    let mut t = Table::new(
        "E1",
        "MIS (Sec. 4) under a random unreliable adversary: rounds to solve vs n; \
         paper claims O(log^3 n) w.h.p. — the rounds/log^3(n) ratio should stay flat",
        &[
            "n",
            "Delta",
            "trials",
            "valid",
            "mean solve rounds",
            "budget",
            "rounds/log^3 n",
        ],
    );
    let mut fit_points = Vec::new();
    for &n in ns {
        let mut valid = 0u64;
        let mut solve_sum = 0u64;
        let mut delta = 0usize;
        let params = MisParams::default();
        // Trials are independent with per-trial derived seeds, so they fan
        // out in parallel with results identical to the serial loop.
        for (d, ok, solve) in run_trials(trials, |s| {
            let net = geometric(n, 1000 + s);
            let run = run_mis(&net, params, AdversaryKind::Random { p: 0.5 }, 7 + s);
            (
                net.max_degree_g(),
                run.report.is_valid(),
                run.solve_round.unwrap_or(run.rounds_executed),
            )
        }) {
            delta = delta.max(d);
            valid += u64::from(ok);
            solve_sum += solve;
        }
        let mean = solve_sum as f64 / trials as f64;
        fit_points.push((f64::from(ceil_log2(n)), mean));
        t.push(vec![
            n.to_string(),
            delta.to_string(),
            trials.to_string(),
            format!("{valid}/{trials}"),
            f1(mean),
            params.total_rounds(n).to_string(),
            f3(mean / log3(n)),
        ]);
    }
    // Footer: the measured exponent of solve rounds in log n (paper: ≤ 3).
    if let Some(p) = loglog_exponent(&fit_points) {
        t.caption.push_str(&format!(
            " [measured exponent of rounds in log n: {p:.2}; paper bound: 3]"
        ));
    }
    t
}

/// E2 (Corollary 4.7): MIS density — at most `I_r` MIS nodes within
/// distance `r` of any node.
fn e2_mis_density(quick: bool) -> Table {
    let ns: &[usize] = if quick { &[64] } else { &[64, 256] };
    let mut t = Table::new(
        "E2",
        "MIS density (Cor. 4.7): max MIS nodes within distance r of any node, \
         against the overlay constant I_r",
        &["n", "r", "max in ball", "I_r bound", "within bound"],
    );
    for &n in ns {
        let net = geometric(n, 2000);
        let run = run_mis(
            &net,
            MisParams::default(),
            AdversaryKind::Random { p: 0.5 },
            3,
        );
        for r in [1.0f64, 2.0, 3.0] {
            let got = mis_density_within(&net, &run.outputs, r).expect("embedded network");
            let bound = density_bound(r);
            t.push(vec![
                n.to_string(),
                f1(r),
                got.to_string(),
                bound.to_string(),
                (got <= bound).to_string(),
            ]);
        }
    }
    t
}

/// E3 (Theorem 5.3): CCDS rounds `O(Δ·log²n/b + log³n)` — sweep `Δ` at
/// small `b`, then sweep `b` at fixed density; the crossover is where the
/// dissemination term stops dominating.
fn e3_ccds_tradeoff(quick: bool) -> Vec<Table> {
    let n: usize = if quick { 48 } else { 96 };
    // (a) Δ sweep at small b.
    let degrees: &[f64] = if quick {
        &[8.0, 14.0]
    } else {
        &[8.0, 14.0, 20.0, 26.0]
    };
    let mut ta = Table::new(
        "E3a",
        "CCDS (Sec. 5) rounds vs Delta at small b = 64 bits: the Delta*log^2(n)/b \
         term dominates, so rounds grow ~linearly in Delta",
        &[
            "n",
            "Delta",
            "b",
            "chunk windows",
            "schedule rounds",
            "solved at",
            "valid",
        ],
    );
    for &deg in degrees {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let net = random_geometric(
            &RandomGeometricConfig::with_expected_degree(n, deg),
            &mut rng,
        )
        .expect("configuration connects");
        let cfg = CcdsConfig::new(n, net.max_degree_g(), 64);
        let run = run_ccds(&net, &cfg, AdversaryKind::Random { p: 0.5 }, 5).expect("b >= min");
        let sched = cfg.schedule().expect("valid schedule");
        ta.push(vec![
            n.to_string(),
            net.max_degree_g().to_string(),
            "64".to_string(),
            sched.chunk_windows.to_string(),
            run.schedule_total.to_string(),
            run.solve_round.map_or("—".to_string(), |r| r.to_string()),
            (run.report.terminated && run.report.connected && run.report.dominating).to_string(),
        ]);
    }
    // (b) b sweep at fixed topology.
    let bs: &[u64] = if quick {
        &[64, 512]
    } else {
        &[48, 64, 128, 256, 512, 1024, 2048]
    };
    let net = geometric(n, 3000);
    let mut tb = Table::new(
        "E3b",
        "CCDS rounds vs message bound b at fixed Delta: rounds fall as 1/b until \
         the MIS term log^3 n dominates (the paper's large-message regime b = Omega(Delta log n))",
        &[
            "n",
            "Delta",
            "b",
            "chunk windows",
            "schedule rounds",
            "solved at",
            "valid",
        ],
    );
    for &b in bs {
        let cfg = CcdsConfig::new(n, net.max_degree_g(), b);
        match run_ccds(&net, &cfg, AdversaryKind::Random { p: 0.5 }, 11) {
            Ok(run) => {
                let sched = cfg.schedule().expect("valid schedule");
                tb.push(vec![
                    n.to_string(),
                    net.max_degree_g().to_string(),
                    b.to_string(),
                    sched.chunk_windows.to_string(),
                    run.schedule_total.to_string(),
                    run.solve_round.map_or("—".to_string(), |r| r.to_string()),
                    (run.report.terminated && run.report.connected && run.report.dominating)
                        .to_string(),
                ]);
            }
            Err(_) => {
                tb.push(vec![
                    n.to_string(),
                    net.max_degree_g().to_string(),
                    b.to_string(),
                    "—".to_string(),
                    "—".to_string(),
                    "b below minimum".to_string(),
                    "—".to_string(),
                ]);
            }
        }
    }
    vec![ta, tb]
}

/// E4 (Theorem 6.2): τ-complete CCDS rounds `O(Δ·polylog n)` — linear in
/// `Δ` regardless of message size.
fn e4_tau_ccds(quick: bool) -> Table {
    let n: usize = if quick { 24 } else { 48 };
    let taus: &[usize] = if quick { &[1] } else { &[1, 2, 3] };
    let degrees: &[f64] = if quick { &[8.0] } else { &[6.0, 10.0, 14.0] };
    let mut t = Table::new(
        "E4",
        "tau-complete CCDS (Sec. 6): rounds vs Delta and tau; linear in Delta \
         (per-neighbor slots), tau+1 MIS iterations",
        &[
            "n",
            "tau",
            "Delta",
            "slots",
            "schedule rounds",
            "winners",
            "valid",
        ],
    );
    for &tau in taus {
        for &deg in degrees {
            let mut rng = rand::rngs::StdRng::seed_from_u64(41 + tau as u64);
            let net = random_geometric(
                &RandomGeometricConfig::with_expected_degree(n, deg),
                &mut rng,
            )
            .expect("configuration connects");
            let ids = IdAssignment::identity(n);
            let det = LinkDetectorAssignment::tau_complete(
                &net,
                &ids,
                tau,
                SpuriousSource::UnreliableNeighbors,
                &mut rng,
            );
            let cfg = TauConfig::new(n, net.max_degree_g() + tau, tau);
            let run = run_tau_ccds(&net, &det, &cfg, AdversaryKind::Random { p: 0.5 }, 13);
            t.push(vec![
                n.to_string(),
                tau.to_string(),
                net.max_degree_g().to_string(),
                cfg.schedule().slots.to_string(),
                run.schedule_total.to_string(),
                run.winners.to_string(),
                (run.report.terminated && run.report.connected && run.report.dominating)
                    .to_string(),
            ]);
        }
    }
    t
}

/// E5 (Theorem 7.1): the Ω(Δ) lower bound, three ways — the single hitting
/// game floor, the end-to-end two-clique run, and the separation against
/// the 0-complete algorithm.
fn e5_lower_bound(quick: bool) -> Vec<Table> {
    // (a) single hitting game.
    let betas: &[u32] = if quick {
        &[16, 64]
    } else {
        &[16, 32, 64, 128, 256]
    };
    let trials = if quick { 100 } else { 400 };
    let mut ta = Table::new(
        "E5a",
        "beta-single hitting game: mean rounds to hit vs beta; any strategy needs \
         >= (beta+1)/2 in expectation — the bottom of the Thm 7.1 reduction",
        &[
            "beta",
            "optimal (no replacement)",
            "with replacement",
            "floor (beta+1)/2",
        ],
    );
    for &beta in betas {
        let opt = mean_hitting_time(beta, trials, 1, |s| {
            Box::new(UniformNoReplacement::new(beta, s))
        });
        let with = mean_hitting_time(beta, trials, 2, |s| {
            Box::new(UniformWithReplacement::new(beta, s))
        });
        ta.push(vec![
            beta.to_string(),
            f1(opt),
            f1(with),
            f1(expected_rounds_floor(beta)),
        ]);
    }
    // (b) two-clique network, 1-complete detectors, isolating adversary.
    let betas_b: &[usize] = if quick { &[4, 6] } else { &[4, 6, 8, 12, 16] };
    let sweep = two_clique_sweep(betas_b, if quick { 1 } else { 3 }, 99);
    let mut tb = Table::new(
        "E5b",
        "two-clique network (Lemma 7.2) with 1-complete detectors under the \
         clique-isolating adversary: rounds grow linearly in Delta = beta \
         (upper-bounded by the Sec. 6 schedule, lower-bounded by Thm 7.1)",
        &[
            "Delta=beta",
            "trials",
            "valid",
            "mean solve",
            "mean bridge join",
            "schedule",
        ],
    );
    for row in &sweep {
        tb.push(vec![
            row.beta.to_string(),
            row.trials.to_string(),
            format!("{}/{}", row.valid, row.trials),
            f1(row.mean_solve_round),
            f1(row.mean_bridge_round),
            row.schedule_total.to_string(),
        ]);
    }
    // (c) separation: 0-complete CCDS at large b is polylog (flat in Δ);
    // 1-complete is linear in Δ.
    let mut tc = Table::new(
        "E5c",
        "the separation: schedule rounds for 0-complete CCDS (large b) stay \
         ~flat in Delta while the 1-complete structure grows linearly",
        &["Delta", "0-complete rounds (b=4096)", "1-complete rounds"],
    );
    for &beta in betas_b {
        let n = 2 * beta;
        let zero = CcdsConfig::new(n, beta, 4096)
            .schedule()
            .expect("large b")
            .total;
        let one = TauConfig::new(n, beta, 1).schedule().total;
        tc.push(vec![beta.to_string(), zero.to_string(), one.to_string()]);
    }
    vec![ta, tb, tc]
}

/// E6 (Theorem 8.1): the continuous CCDS recovers within `2·δ_CDS` of
/// detector stabilization.
fn e6_dynamic(quick: bool) -> Table {
    let seeds: &[u64] = if quick { &[1] } else { &[1, 2, 3] };
    let n = 8usize;
    let mut t = Table::new(
        "E6",
        "continuous CCDS (Sec. 8) with a dynamic detector stabilizing at round r: \
         the structure is a valid CCDS when checked at r + 2*delta_CDS (Thm 8.1)",
        &[
            "seed",
            "stabilize round",
            "delta_CDS",
            "checked at",
            "valid",
        ],
    );
    for &seed in seeds {
        let g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).expect("path");
        let net = DualGraph::classic(g).expect("connected");
        let ids = IdAssignment::identity(n);
        let good = LinkDetectorAssignment::zero_complete(&net, &ids);
        let sparse = {
            let mut sets: Vec<std::collections::BTreeSet<u32>> =
                (0..n).map(|v| good.set(NodeId(v)).clone()).collect();
            for set in sets.iter_mut().skip(2) {
                if let Some(&first) = set.iter().next() {
                    set.remove(&first);
                }
            }
            LinkDetectorAssignment::from_sets(sets)
        };
        let cfg = CcdsConfig::new(n, net.max_degree_g(), 256);
        let probe = ContinuousCcds::new(&cfg, radio_sim::ProcessId::new(1).expect("valid"))
            .expect("valid config");
        let delta = probe.cycle_len();
        let stabilize_at = (delta / 2).max(2);
        let dyn_det = DynamicDetector::new(vec![(1, sparse), (stabilize_at, good.clone())])
            .expect("valid schedule");
        let h = good.h_graph(&ids);
        let mut engine = EngineBuilder::new(net)
            .seed(seed)
            .detector(dyn_det)
            .spawn(|info| ContinuousCcds::new(&cfg, info.id).expect("valid config"))
            .expect("valid engine");
        let deadline = stabilize_at + 2 * delta;
        engine.run_rounds(deadline + 1);
        let report = check_ccds(engine.net(), &h, &engine.outputs());
        t.push(vec![
            seed.to_string(),
            stabilize_at.to_string(),
            delta.to_string(),
            (deadline + 1).to_string(),
            (report.terminated && report.connected && report.dominating).to_string(),
        ]);
    }
    t
}

/// E7 (Theorem 9.4): asynchronous-start MIS — max rounds-from-wake vs `n`,
/// in the classic model without topology knowledge and in the dual graph
/// with 0-complete detectors.
fn e7_async_mis(quick: bool) -> Table {
    let ns: &[usize] = if quick { &[16, 32] } else { &[32, 64, 128] };
    let mut t = Table::new(
        "E7",
        "async-start MIS (Sec. 9): max rounds from wake-up to output vs n; \
         paper claims O(log^3 n) per process — ratio should stay ~flat",
        &[
            "n",
            "model",
            "max latency",
            "log^3 n",
            "latency/log^3 n",
            "valid",
        ],
    );
    // Each (n, model) configuration is an independent run; fan them out in
    // parallel and push rows in the original sweep order.
    let configs: Vec<(usize, bool)> = ns.iter().flat_map(|&n| [(n, true), (n, false)]).collect();
    let rows = run_trials(configs.len() as u64, |i| {
        let (n, classic) = configs[i as usize];
        let (net, filter) = if classic {
            let mut rng = rand::rngs::StdRng::seed_from_u64(71);
            let mut cfg = RandomGeometricConfig::dense(n);
            cfg.gray_prob = 0.0;
            (
                random_geometric(&cfg, &mut rng).expect("connects"),
                AsyncFilter::AcceptAll,
            )
        } else {
            (geometric(n, 72), AsyncFilter::Detector)
        };
        let params = AsyncMisParams::default();
        let epoch = params.epoch_len(n);
        let wakes: Vec<u64> = (0..n).map(|i| 1 + (i as u64 % 8) * (epoch / 2)).collect();
        let budget = 8 * epoch / 2 + 60 * epoch;
        let mut engine = EngineBuilder::new(net)
            .seed(73)
            .wake_rounds(wakes)
            .adversary(radio_sim::adversary::AllUnreliable)
            .spawn(|info| AsyncMis::new(info.n, info.id, params, filter))
            .expect("valid engine");
        let out = engine.run(budget);
        let outputs = engine.outputs();
        let max_latency = (0..n)
            .filter_map(|v| engine.decided_latency(NodeId(v)))
            .max()
            .unwrap_or(0);
        let g = engine.net().g();
        let mut valid = out.stop == StopReason::AllDone;
        for (u, v) in g.edges() {
            if outputs[u] == Some(true) && outputs[v] == Some(true) {
                valid = false;
            }
        }
        for v in 0..n {
            if outputs[v] == Some(false)
                && !g.neighbors(v).iter().any(|&u| outputs[u] == Some(true))
            {
                valid = false;
            }
        }
        vec![
            n.to_string(),
            if classic {
                "classic, no topology".to_string()
            } else {
                "dual graph, 0-complete".to_string()
            },
            max_latency.to_string(),
            f1(log3(n)),
            f3(max_latency as f64 / log3(n)),
            valid.to_string(),
        ]
    });
    for row in rows {
        t.push(row);
    }
    t
}

/// E8 (ablation, Sec. 5 discussion): banned-list explorations per MIS node
/// stay `O(1)` while the naive approach pays `Θ(Δ)` turns.
fn e8_ablation(quick: bool) -> Table {
    let spacings: &[f64] = if quick {
        &[0.9, 0.45]
    } else {
        &[0.9, 0.6, 0.45, 0.32]
    };
    let side = if quick { 5 } else { 7 };
    let mut t = Table::new(
        "E8",
        "banned list ablation: explorations per MIS node (Sec. 5, measured max) vs \
         the naive explore-every-neighbor turns (Sec. 5's 'simple approach' = Sec. 6 at tau=0)",
        &[
            "Delta",
            "banned-list explorations (max)",
            "naive turns",
            "banned rounds",
            "naive rounds",
            "banned valid",
        ],
    );
    for &spacing in spacings {
        let mut rng = rand::rngs::StdRng::seed_from_u64(81);
        let net = grid(&GridConfig::new(side, side, spacing), &mut rng).expect("valid grid");
        let n = net.n();
        let delta = net.max_degree_g();
        let cfg = CcdsConfig::new(n, delta, 1024);
        let run = run_ccds(&net, &cfg, AdversaryKind::Random { p: 0.5 }, 7).expect("valid b");
        let naive = NaiveCcdsConfig::new(n, delta);
        t.push(vec![
            delta.to_string(),
            run.max_explorations.to_string(),
            naive.exploration_turns().to_string(),
            run.schedule_total.to_string(),
            naive.total_rounds().to_string(),
            (run.report.terminated && run.report.connected && run.report.dominating).to_string(),
        ]);
    }
    t
}

/// E9 (model, Sec. 2/4): adversary impact on the MIS, and the
/// detector-less broadcast trade-off (Decay vs round robin).
fn e9_adversaries(quick: bool) -> Vec<Table> {
    let n = if quick { 32 } else { 64 };
    let net = geometric(n, 91);
    let kinds = [
        AdversaryKind::ReliableOnly,
        AdversaryKind::Random { p: 0.5 },
        AdversaryKind::Bursty {
            p_gb: 0.05,
            p_bg: 0.05,
        },
        AdversaryKind::AllUnreliable,
        AdversaryKind::Collider,
    ];
    let mut ta = Table::new(
        "E9a",
        "MIS solve rounds under increasingly hostile reach-set adversaries: \
         correctness holds under all (the Sec. 4 design goal); cost degrades gracefully",
        &["adversary", "valid", "solve rounds", "collisions"],
    );
    for kind in kinds {
        let run = run_mis(&net, MisParams::default(), kind, 17);
        ta.push(vec![
            kind.name().to_string(),
            run.report.is_valid().to_string(),
            run.solve_round.map_or("—".to_string(), |r| r.to_string()),
            run.metrics.collisions.to_string(),
        ]);
    }
    // Broadcast: Decay (fast, fragile) vs round robin (slow, immune) on a
    // line with unreliable chords.
    let len = if quick { 12 } else { 20 };
    let g = Graph::from_edges(len, (0..len - 1).map(|i| (i, i + 1))).expect("path");
    let mut gp = g.clone();
    for i in 0..len - 2 {
        gp.add_edge(i, i + 2);
    }
    let bnet = DualGraph::new(g, gp).expect("valid dual graph");
    let mut tbl = Table::new(
        "E9b",
        "detector-less broadcast on a line with unreliable chords: Decay is fast \
         when links behave but degrades under the collider; round robin is \
         adversary-immune at Theta(n)-per-hop cost (why [5] calls it optimal)",
        &[
            "protocol",
            "adversary",
            "rounds to full coverage",
            "covered",
        ],
    );
    let ids = IdAssignment::from_ids((1..=len as u32).rev().collect()).expect("permutation");
    for (proto, collider) in [("decay", false), ("decay", true), ("round-robin", true)] {
        let budget = 40_000u64;
        let (rounds, covered) = if proto == "decay" {
            let mut b = EngineBuilder::new(bnet.clone()).seed(19).ids(ids.clone());
            if collider {
                b = b.adversary(radio_sim::adversary::Collider);
            }
            let mut e = b
                .spawn(|info| DecayBroadcast::new(info.n, info.node.index() == 0))
                .expect("valid engine");
            let out = e.run(budget);
            (out.rounds, matches!(out.stop, StopReason::AllDone))
        } else {
            let mut e = EngineBuilder::new(bnet.clone())
                .seed(19)
                .ids(ids.clone())
                .adversary(radio_sim::adversary::Collider)
                .spawn(|info| RoundRobinBroadcast::new(info.node.index() == 0))
                .expect("valid engine");
            let out = e.run(budget);
            (out.rounds, matches!(out.stop, StopReason::AllDone))
        };
        tbl.push(vec![
            proto.to_string(),
            if collider {
                "collider"
            } else {
                "reliable-only"
            }
            .to_string(),
            rounds.to_string(),
            covered.to_string(),
        ]);
    }
    vec![ta, tbl]
}

/// E10 (application, paper §1 motivation): the CCDS as a routing backbone —
/// flood coverage with backbone-only forwarding vs whole-network flooding.
fn e10_backbone(quick: bool) -> Table {
    let ns: &[usize] = if quick { &[48] } else { &[48, 96] };
    let mut t = Table::new(
        "E10",
        "CCDS as routing backbone (the paper's motivating application): flood a \
         message with only backbone nodes forwarding vs everyone flooding; the \
         backbone trades constant-factor latency for a transmission rate \
         proportional to backbone size instead of n",
        &[
            "n",
            "backbone size",
            "mode",
            "coverage rounds",
            "broadcasts",
            "tx rate/round",
            "transmitters",
        ],
    );
    for &n in ns {
        let net = geometric(n, 4000);
        let cfg = CcdsConfig::new(n, net.max_degree_g(), 512);
        let run = run_ccds(&net, &cfg, AdversaryKind::Random { p: 0.5 }, 5).expect("valid b");
        let ccds: Vec<bool> = run.outputs.iter().map(|o| *o == Some(true)).collect();
        let size = ccds.iter().filter(|&&c| c).count();
        for (mode, flags) in [("backbone", ccds.clone()), ("flood-all", vec![true; n])] {
            let stats = radio_structures::backbone::run_backbone_flood(
                &net,
                &flags,
                0,
                AdversaryKind::Random { p: 0.5 },
                11,
                200_000,
            );
            let rounds = stats.coverage_round;
            t.push(vec![
                n.to_string(),
                size.to_string(),
                mode.to_string(),
                rounds.map_or("—".to_string(), |r| r.to_string()),
                stats.broadcasts.to_string(),
                rounds.map_or("—".to_string(), |r| f3(stats.broadcasts as f64 / r as f64)),
                stats.transmitters.to_string(),
            ]);
        }
    }
    t
}

/// E11 (future work, §10): probing non-constant τ — the paper leaves CCDS
/// for larger τ open and conjectures impossibility once τ exceeds the
/// constant-bounded degree. The §6 algorithm's cost grows linearly in τ
/// (one MIS iteration each); we sweep τ well past O(1) and watch cost and
/// structure quality.
fn e11_large_tau(quick: bool) -> Table {
    let n: usize = if quick { 24 } else { 40 };
    let taus: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 6, 8] };
    let mut t = Table::new(
        "E11",
        "beyond the paper (Sec. 10 future work): tau-CCDS at non-constant tau; \
         cost grows linearly in tau and the winner set densifies (tau+1 per \
         disk) — the quantity the paper's impossibility conjecture is about",
        &[
            "n",
            "tau",
            "schedule rounds",
            "winners",
            "max CCDS G'-neighbors",
            "valid",
        ],
    );
    for &tau in taus {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1100 + tau as u64);
        let net = geometric(n, 5000);
        let ids = IdAssignment::identity(n);
        let det = LinkDetectorAssignment::tau_complete(
            &net,
            &ids,
            tau,
            SpuriousSource::AnyNonNeighbor,
            &mut rng,
        );
        let cfg = TauConfig::new(n, net.max_degree_g() + tau, tau);
        let run = run_tau_ccds(&net, &det, &cfg, AdversaryKind::Random { p: 0.5 }, 17);
        t.push(vec![
            n.to_string(),
            tau.to_string(),
            run.schedule_total.to_string(),
            run.winners.to_string(),
            run.report.max_gprime_neighbors_in_set.to_string(),
            (run.report.terminated && run.report.connected && run.report.dominating).to_string(),
        ]);
    }
    t
}

fn assert_tables_match(id: &str, reference: Vec<Table>) {
    let refactored = radio_bench::run_experiment(id, true);
    assert_eq!(
        refactored.len(),
        reference.len(),
        "{id}: table count changed"
    );
    for (new, old) in refactored.iter().zip(&reference) {
        assert_eq!(
            new.render(),
            old.render(),
            "{id}/{}: spec-driven table differs from the pre-refactor output",
            old.id
        );
    }
}

#[test]
fn e1_matches_pre_refactor() {
    assert_tables_match("e1", vec![e1_mis_scaling(true)]);
}

#[test]
fn e2_matches_pre_refactor() {
    assert_tables_match("e2", vec![e2_mis_density(true)]);
}

#[test]
fn e3_matches_pre_refactor() {
    assert_tables_match("e3", e3_ccds_tradeoff(true));
}

#[test]
fn e4_matches_pre_refactor() {
    assert_tables_match("e4", vec![e4_tau_ccds(true)]);
}

#[test]
fn e5_matches_pre_refactor() {
    assert_tables_match("e5", e5_lower_bound(true));
}

#[test]
fn e6_matches_pre_refactor() {
    assert_tables_match("e6", vec![e6_dynamic(true)]);
}

#[test]
fn e7_matches_pre_refactor() {
    assert_tables_match("e7", vec![e7_async_mis(true)]);
}

#[test]
fn e8_matches_pre_refactor() {
    assert_tables_match("e8", vec![e8_ablation(true)]);
}

#[test]
fn e9_matches_pre_refactor() {
    assert_tables_match("e9", e9_adversaries(true));
}

#[test]
fn e10_matches_pre_refactor() {
    assert_tables_match("e10", vec![e10_backbone(true)]);
}

#[test]
fn e11_matches_pre_refactor() {
    assert_tables_match("e11", vec![e11_large_tau(true)]);
}

/// The generic aggregation engine must be able to express E1's bespoke
/// summary table **byte for byte**: take the registry E1 spec, swap its
/// renderer for a declarative [`AggregateSpec`], and compare against the
/// pre-refactor imperative output. Any drift in the group-by fold, the
/// reduction formatting, the normalizer, or the slope caption fails here —
/// the same tripwire the planner already has.
#[test]
fn aggregate_spec_reproduces_e1_byte_for_byte() {
    use radio_bench::aggregate::{
        AggregateSpec, GroupKey, MetricSource, MetricSpec, Normalizer, Reduction, SlopeAxis,
        SlopeSpec,
    };
    use radio_bench::scenario::{registry, render, run_spec, RenderKind};

    let mut spec = registry::specs("e1", true)
        .expect("e1 registered")
        .remove(0);
    spec.render = RenderKind::Aggregate;
    spec.aggregate = Some(AggregateSpec {
        group_by: vec![GroupKey::N],
        // The imperative E1 table substitutes the round budget for
        // unsolved runs (`solve_round.unwrap_or(rounds_executed)`), so its
        // declarative mirror opts into that historical convention
        // explicitly — the PR 4 default excludes unsolved records.
        metrics: vec![
            MetricSpec::labeled(MetricSource::MaxDegree, vec![Reduction::Max], "Delta"),
            MetricSpec {
                source: MetricSource::SolveRound,
                reductions: vec![Reduction::Count],
                per: None,
                label: None,
                include_invalid: Some(true),
            },
            MetricSpec::new(MetricSource::Valid, vec![Reduction::Frac]),
            MetricSpec {
                source: MetricSource::SolveRound,
                reductions: vec![Reduction::Mean],
                per: None,
                label: Some("mean solve rounds".to_string()),
                include_invalid: Some(true),
            },
            MetricSpec::labeled(
                MetricSource::Extra {
                    key: "budget".to_string(),
                },
                vec![Reduction::Max],
                "budget",
            ),
            MetricSpec {
                source: MetricSource::SolveRound,
                reductions: vec![Reduction::Mean],
                per: Some(Normalizer::Log3N),
                label: Some("rounds/log^3 n".to_string()),
                include_invalid: Some(true),
            },
        ],
        slope: Some(SlopeSpec {
            x: SlopeAxis::Log2N,
            metric: 3,
            caption: " [measured exponent of rounds in log n: {p}; paper bound: 3]".to_string(),
        }),
    });
    let run = run_spec(&spec);
    let aggregated = render(&spec, &run);
    assert_eq!(
        aggregated.render(),
        e1_mis_scaling(true).render(),
        "declarative aggregation drifted from the imperative E1 table"
    );
}
