//! Integration tests for the Section 4 MIS across topologies, adversaries,
//! and id assignments — verifying Theorem 4.6's conditions and the
//! Corollary 4.7 density bound end to end.

use radio_sim::topology::{clustered, grid, line, random_geometric};
use radio_sim::topology::{ClusteredConfig, GridConfig, RandomGeometricConfig};
use radio_sim::{DualGraph, EngineBuilder, Graph, IdAssignment, LinkDetectorAssignment};
use radio_structures::checker::{check_mis, density_bound, mis_density_within};
use radio_structures::params::MisParams;
use radio_structures::runner::{run_mis, AdversaryKind};
use radio_structures::Mis;
use rand::SeedableRng;

#[test]
fn mis_on_random_geometric_all_adversaries() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(100);
    let net = random_geometric(&RandomGeometricConfig::dense(64), &mut rng).unwrap();
    for kind in [
        AdversaryKind::ReliableOnly,
        AdversaryKind::Random { p: 0.3 },
        AdversaryKind::Random { p: 0.9 },
        AdversaryKind::AllUnreliable,
        AdversaryKind::Collider,
    ] {
        let run = run_mis(&net, MisParams::default(), kind, 5);
        assert!(
            run.report.is_valid(),
            "MIS failed under {:?}: {:?}",
            kind.name(),
            run.report
        );
    }
}

#[test]
fn mis_on_grid_and_line_and_clusters() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(101);
    let nets = vec![
        grid(&GridConfig::new(7, 7, 0.8), &mut rng).unwrap(),
        line(30, 0.9, 2.0, 0.6, &mut rng).unwrap(),
        clustered(&ClusteredConfig::new(3, 12), &mut rng).unwrap(),
    ];
    for (i, net) in nets.into_iter().enumerate() {
        let run = run_mis(
            &net,
            MisParams::default(),
            AdversaryKind::Random { p: 0.5 },
            200 + i as u64,
        );
        assert!(run.report.is_valid(), "topology {i}: {:?}", run.report);
    }
}

#[test]
fn mis_density_respects_corollary_4_7() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(102);
    let net = random_geometric(&RandomGeometricConfig::dense(96), &mut rng).unwrap();
    let run = run_mis(
        &net,
        MisParams::default(),
        AdversaryKind::Random { p: 0.5 },
        9,
    );
    assert!(run.report.is_valid());
    for r in [1.0, 2.0, 4.0] {
        let got = mis_density_within(&net, &run.outputs, r).unwrap();
        assert!(
            got <= density_bound(r),
            "density {got} exceeds I_{r} = {}",
            density_bound(r)
        );
    }
}

#[test]
fn mis_is_independent_of_id_assignment() {
    // The adversary controls proc; run the same topology under several
    // permutations, including the reverse (worst case for id-ordered
    // tie-breaks).
    let g = Graph::from_edges(16, (0..15).map(|i| (i, i + 1))).unwrap();
    let net = DualGraph::classic(g.clone()).unwrap();
    let params = MisParams::default();
    let assignments = vec![
        IdAssignment::identity(16),
        IdAssignment::from_ids((1..=16).rev().collect()).unwrap(),
        IdAssignment::random(16, &mut rand::rngs::StdRng::seed_from_u64(103)),
    ];
    for ids in assignments {
        let det = LinkDetectorAssignment::zero_complete(&net, &ids);
        let h = det.h_graph(&ids);
        let mut engine = EngineBuilder::new(net.clone())
            .seed(11)
            .ids(ids)
            .detector(det)
            .spawn(|info| Mis::new(info.n, info.id, params))
            .unwrap();
        engine.run(params.total_rounds(16));
        let report = check_mis(&net, &h, &engine.outputs());
        assert!(report.is_valid(), "{report:?}");
    }
}

#[test]
fn mis_message_sizes_are_within_logarithmic_budget() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(104);
    let net = random_geometric(&RandomGeometricConfig::dense(48), &mut rng).unwrap();
    let params = MisParams::default();
    let mut engine = EngineBuilder::new(net)
        .seed(4)
        .max_message_bits(32) // generous b = Ω(log n)
        .spawn(|info| Mis::new(info.n, info.id, params))
        .unwrap();
    engine.run(params.total_rounds(48));
    assert_eq!(engine.metrics().oversize_messages, 0);
}

#[test]
fn mis_solve_round_is_within_theorem_budget() {
    // Theorem 4.6: O(log^3 n) — with our constants, the fixed schedule. The
    // solve round must land inside it (w.h.p.; fixed seeds make this
    // deterministic).
    for n in [32usize, 64] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(105 + n as u64);
        let net = random_geometric(&RandomGeometricConfig::dense(n), &mut rng).unwrap();
        let params = MisParams::default();
        let run = run_mis(&net, params, AdversaryKind::Random { p: 0.5 }, 6);
        assert!(run.report.is_valid());
        assert!(run.solve_round.unwrap() <= params.total_rounds(n));
    }
}
