//! Integration tests for the extension features: bursty links, the
//! distance-decay gray zone, backbone analysis, CSV export, and the
//! localized repair loop under detector churn.

use radio_sim::export::{metrics_to_csv, trace_to_csv};
use radio_sim::topology::{random_geometric, random_geometric_decay, RandomGeometricConfig};
use radio_sim::{
    DualGraph, DynamicDetector, EngineBuilder, Graph, IdAssignment, LinkDetectorAssignment, NodeId,
};
use radio_structures::analysis::backbone_quality;
use radio_structures::checker::check_ccds;
use radio_structures::params::MisParams;
use radio_structures::runner::{run_ccds, run_mis, AdversaryKind};
use radio_structures::{CcdsConfig, Mis, RepairingCcds};
use rand::SeedableRng;

#[test]
fn mis_valid_under_bursty_links() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(700);
    let net = random_geometric(&RandomGeometricConfig::dense(48), &mut rng).unwrap();
    for (p_gb, p_bg) in [(0.05, 0.05), (0.01, 0.2), (0.3, 0.02)] {
        let run = run_mis(
            &net,
            MisParams::default(),
            AdversaryKind::Bursty { p_gb, p_bg },
            13,
        );
        assert!(
            run.report.is_valid(),
            "bursty ({p_gb}, {p_bg}): {:?}",
            run.report
        );
    }
}

#[test]
fn ccds_valid_on_distance_decay_gray_zone() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(701);
    let net =
        random_geometric_decay(&RandomGeometricConfig::dense(48), 0.9, 0.05, &mut rng).unwrap();
    let cfg = CcdsConfig::new(net.n(), net.max_degree_g(), 512);
    let run = run_ccds(
        &net,
        &cfg,
        AdversaryKind::Bursty {
            p_gb: 0.05,
            p_bg: 0.05,
        },
        5,
    )
    .unwrap();
    assert!(
        run.report.terminated && run.report.connected && run.report.dominating,
        "{:?}",
        run.report
    );
}

#[test]
fn ccds_backbone_routes_with_constant_stretch() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(702);
    let net = random_geometric(&RandomGeometricConfig::dense(64), &mut rng).unwrap();
    let cfg = CcdsConfig::new(net.n(), net.max_degree_g(), 512);
    let run = run_ccds(&net, &cfg, AdversaryKind::Random { p: 0.5 }, 6).unwrap();
    let backbone: Vec<bool> = run.outputs.iter().map(|o| *o == Some(true)).collect();
    let q = backbone_quality(&net, &backbone).expect("a valid CCDS routes all pairs");
    assert!(q.max_stretch <= 4.0, "max stretch {}", q.max_stretch);
    assert!(q.mean_stretch <= 2.0, "mean stretch {}", q.mean_stretch);
}

#[test]
fn traces_export_to_csv() {
    let g = Graph::from_edges(6, (0..5).map(|i| (i, i + 1))).unwrap();
    let net = DualGraph::classic(g).unwrap();
    let params = MisParams::default();
    let mut engine = EngineBuilder::new(net)
        .seed(1)
        .record_trace(true)
        .spawn(|info| Mis::new(info.n, info.id, params))
        .unwrap();
    engine.run(params.total_rounds(6));
    let csv = trace_to_csv(engine.trace().expect("recording enabled"));
    // One line per executed round plus the header.
    assert_eq!(csv.lines().count() as u64, engine.round() + 1);
    let mcsv = metrics_to_csv(engine.metrics());
    assert_eq!(mcsv.lines().count(), 2);
}

#[test]
fn repair_loop_recovers_from_detector_churn() {
    // Detector under-reports during the bootstrap, stabilizes during the
    // first repair cycle; subsequent repair cycles must publish a structure
    // valid against the *stable* H. (The MIS is built from the sparse view
    // but stays valid: fewer detector entries only make maximality checks
    // harder, and the checker runs against the final H ⊇ sparse H.)
    let n = 10usize;
    let g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap();
    let net = DualGraph::classic(g).unwrap();
    let ids = IdAssignment::identity(n);
    let good = LinkDetectorAssignment::zero_complete(&net, &ids);
    let sparse = {
        let mut sets: Vec<std::collections::BTreeSet<u32>> =
            (0..n).map(|v| good.set(NodeId(v)).clone()).collect();
        // Hide one entry at a few high-degree-side nodes.
        for set in sets.iter_mut().skip(4) {
            if set.len() > 1 {
                let first = *set.iter().next().unwrap();
                set.remove(&first);
            }
        }
        LinkDetectorAssignment::from_sets(sets)
    };
    let cfg = CcdsConfig::new(n, net.max_degree_g(), 256);
    let probe = RepairingCcds::new(&cfg, radio_sim::ProcessId::new(1).unwrap()).unwrap();
    let boot = probe.bootstrap_len();
    let repair = probe.repair_len();
    // Stabilize halfway through the first repair cycle.
    let stabilize_at = boot + repair / 2;
    let dyn_det = DynamicDetector::new(vec![(1, sparse), (stabilize_at, good.clone())]).unwrap();
    let h = good.h_graph(&ids);
    let mut engine = EngineBuilder::new(net.clone())
        .seed(19)
        .detector(dyn_det)
        .spawn(|info| RepairingCcds::new(&cfg, info.id).unwrap())
        .unwrap();
    // Run to the end of the second repair cycle after stabilization.
    engine.run_rounds(boot + 3 * repair + 1);
    let report = check_ccds(&net, &h, &engine.outputs());
    assert!(
        report.terminated && report.connected && report.dominating,
        "{report:?}"
    );
}

#[test]
fn decay_gray_zone_has_shorter_unreliable_links_on_average() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(703);
    let cfg = RandomGeometricConfig::dense(96);
    let uniform = random_geometric(&cfg, &mut rng).unwrap();
    let mut rng2 = rand::rngs::StdRng::seed_from_u64(703);
    let decayed = random_geometric_decay(&cfg, 0.9, 0.05, &mut rng2).unwrap();
    let mean_len = |net: &DualGraph| {
        let pos = net.positions().unwrap();
        let (sum, count) = net
            .unreliable_edges()
            .fold((0.0f64, 0usize), |(s, c), (u, v)| {
                (s + pos[u].dist(pos[v]), c + 1)
            });
        sum / count.max(1) as f64
    };
    assert!(mean_len(&decayed) < mean_len(&uniform));
}
