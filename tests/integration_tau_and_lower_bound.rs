//! Integration tests for Section 6 (τ-complete CCDS) and Section 7 (the
//! Ω(Δ) lower bound): the upper bound's correctness for τ ∈ {1, 2, 3}, the
//! two-clique reduction end to end, and the game-level facts the theorem
//! rests on.

use hitting_games::{
    expected_rounds_floor, mean_hitting_time, play_double, run_two_clique, CliquePlayer,
    CliqueRole, UniformNoReplacement,
};
use radio_sim::topology::{random_geometric, RandomGeometricConfig, TwoClique};
use radio_sim::{IdAssignment, LinkDetectorAssignment, SpuriousSource};
use radio_structures::runner::{run_tau_ccds, AdversaryKind};
use radio_structures::{TauCcds, TauConfig};
use rand::SeedableRng;

#[test]
fn tau_ccds_correct_for_small_tau() {
    for tau in [1usize, 2, 3] {
        let mut rng = rand::rngs::StdRng::seed_from_u64(500 + tau as u64);
        let net = random_geometric(&RandomGeometricConfig::dense(32), &mut rng).unwrap();
        let ids = IdAssignment::identity(net.n());
        let det = LinkDetectorAssignment::tau_complete(
            &net,
            &ids,
            tau,
            SpuriousSource::UnreliableNeighbors,
            &mut rng,
        );
        assert!(det.is_tau_complete(&net, &ids, tau));
        let cfg = TauConfig::new(net.n(), net.max_degree_g() + tau, tau);
        let run = run_tau_ccds(&net, &det, &cfg, AdversaryKind::Random { p: 0.5 }, 7);
        assert!(
            run.report.terminated && run.report.connected && run.report.dominating,
            "tau = {tau}: {:?}",
            run.report
        );
    }
}

#[test]
fn tau_ccds_with_arbitrary_spurious_entries() {
    // The formal definition allows spurious ids anywhere in the graph, not
    // just among G' neighbors — make sure the algorithm tolerates that too.
    let mut rng = rand::rngs::StdRng::seed_from_u64(510);
    let net = random_geometric(&RandomGeometricConfig::dense(28), &mut rng).unwrap();
    let ids = IdAssignment::identity(net.n());
    let det = LinkDetectorAssignment::tau_complete(
        &net,
        &ids,
        1,
        SpuriousSource::AnyNonNeighbor,
        &mut rng,
    );
    let cfg = TauConfig::new(net.n(), net.max_degree_g() + 1, 1);
    let run = run_tau_ccds(&net, &det, &cfg, AdversaryKind::Random { p: 0.5 }, 8);
    assert!(run.report.terminated && run.report.connected && run.report.dominating);
}

#[test]
fn two_clique_network_matches_the_proof() {
    let tc = TwoClique::new(6, 2, 4).unwrap();
    let ids = IdAssignment::identity(12);
    let det = tc.proof_detectors(&ids);
    // 1-complete, and H = G (the construction's crucial property).
    assert!(det.is_tau_complete(tc.network(), &ids, 1));
    assert_eq!(&det.h_graph(&ids), tc.network().g());
    // Δ = β.
    assert_eq!(tc.network().max_degree_g(), 6);
}

#[test]
fn lower_bound_end_to_end_bridge_joins() {
    for (beta, ba, bb) in [(4usize, 0, 0), (6, 5, 2)] {
        let run = run_two_clique(beta, ba, bb, 600 + beta as u64);
        assert!(
            run.report.terminated && run.report.connected && run.report.dominating,
            "beta {beta}: {:?}",
            run.report
        );
        assert!(run.bridge_round.is_some(), "bridge must join the CCDS");
    }
}

#[test]
fn lower_bound_rounds_grow_with_delta() {
    // Thm 7.1's shape: the 1-complete schedule is linear in Δ, so doubling
    // Δ must (at least) double the variable part of the solve time. We
    // check the schedule (exact) and that real runs track it.
    let s4 = TauConfig::new(8, 4, 1).schedule();
    let s8 = TauConfig::new(16, 8, 1).schedule();
    let slots_part_4 = 2 * s4.slots * s4.slot_len;
    let slots_part_8 = 2 * s8.slots * s8.slot_len;
    assert!(slots_part_8 >= 2 * slots_part_4);
    let r4 = run_two_clique(4, 0, 0, 1);
    let r8 = run_two_clique(8, 0, 0, 1);
    assert!(r8.solve_round.unwrap() > r4.solve_round.unwrap());
}

#[test]
fn hitting_game_floor_holds_for_every_strategy_we_have() {
    for beta in [32u32, 128] {
        let mean = mean_hitting_time(beta, 400, 3, |s| {
            Box::new(UniformNoReplacement::new(beta, s))
        });
        // No strategy beats (β+1)/2 in expectation; allow Monte-Carlo slack.
        assert!(
            mean >= 0.8 * expected_rounds_floor(beta),
            "beta {beta}: mean {mean}"
        );
    }
}

#[test]
fn reduction_produces_a_working_double_player() {
    let beta = 4u32;
    let cfg = TauConfig::new(8, 4, 1);
    let budget = cfg.schedule().total + 32;
    let mut pa = CliquePlayer::new(CliqueRole::A, beta, 2, 700, |pid, _d, _n| {
        TauCcds::new(&cfg, pid)
    });
    let mut pb = CliquePlayer::new(CliqueRole::B, beta, 3, 701, |pid, _d, _n| {
        TauCcds::new(&cfg, pid)
    });
    let out = play_double(beta, 3, 2, &mut pa, &mut pb, budget);
    assert!(
        out.solved_at.is_some(),
        "the simulated CCDS must solve the game"
    );
}
