//! Smoke tests for the experiment harness: every experiment must run at
//! quick scale and produce well-formed, non-empty tables whose validity
//! columns (where present) are all `true`. This is the CI-level guarantee
//! that `EXPERIMENTS.md` is regenerable.

use radio_bench::{run_experiment, ALL_EXPERIMENTS};

#[test]
fn every_experiment_runs_quick_and_is_well_formed() {
    for id in ALL_EXPERIMENTS {
        let tables = run_experiment(id, true);
        assert!(!tables.is_empty(), "{id} produced no tables");
        for t in &tables {
            assert!(!t.rows.is_empty(), "{id}/{} has no rows", t.id);
            for row in &t.rows {
                assert_eq!(row.len(), t.header.len(), "{id}/{} row arity", t.id);
            }
            // Rendering is total and includes every row.
            let rendered = t.render();
            assert!(rendered.contains(&t.id));
            assert_eq!(
                rendered.lines().count(),
                t.rows.len() + 4, // caption + blank + header + separator
                "{id}/{} rendering shape",
                t.id
            );
        }
    }
}

#[test]
fn validity_columns_are_all_true_at_quick_scale() {
    for id in ALL_EXPERIMENTS {
        for t in run_experiment(id, true) {
            let Some(col) = t
                .header
                .iter()
                .position(|h| h == "valid" || h == "within bound" || h == "banned valid")
            else {
                continue;
            };
            for row in &t.rows {
                let cell = &row[col];
                // Either a boolean or a "passed/total" fraction.
                let ok = cell == "true"
                    || cell
                        .split_once('/')
                        .is_some_and(|(passed, total)| passed == total);
                assert!(ok, "{id}/{}: row {row:?} failed validity", t.id);
            }
        }
    }
}

#[test]
fn tables_serialize_to_json() {
    for t in run_experiment("e2", true) {
        let json = serde_json::to_string(&t).expect("tables are serializable");
        let back: radio_bench::Table = serde_json::from_str(&json).expect("roundtrip");
        assert_eq!(back, t);
    }
}
