//! Property-based tests of the declarative scenario subsystem: arbitrary
//! `ScenarioSpec`s round-trip losslessly through the vendored serde, the
//! sweep planner's expansion is exactly the grid product with
//! index-derived seeds, and the shared-context batched trial runner is
//! index-for-index identical to the unbatched one.

use proptest::prelude::*;
use radio_bench::aggregate::{
    AggregateSpec, GroupKey, MetricSource, MetricSpec, Normalizer, Reduction, SlopeAxis, SlopeSpec,
};
use radio_bench::scenario::{
    NestOrder, ScenarioSpec, SeedPolicy, StopCondition, TopologyEntry, Workload, WorkloadEntry,
};
use radio_sim::spec::{AdversaryKind, TopologyKind};
use radio_sim::SpuriousSource;
use radio_structures::runner::AlgoKind;

/// Builds a spec whose axis sizes and seeds are driven by the sampled
/// inputs, cycling through every workload/topology/adversary shape so the
/// serde derives are exercised across the whole enum surface.
#[allow(clippy::too_many_arguments)]
fn sample_spec(
    topos: usize,
    advs: usize,
    works: usize,
    trials: u64,
    net_base: u64,
    run_base: u64,
    workload_major: bool,
    p: f64,
) -> ScenarioSpec {
    let topology_pool = [
        TopologyKind::Clique { n: 4 },
        TopologyKind::Path { n: 5 },
        TopologyKind::PathChords { n: 6 },
        TopologyKind::Line {
            n: 6,
            spacing: 0.8,
            d: 2.0,
            gray_prob: p,
        },
        TopologyKind::Grid {
            cols: 3,
            rows: 2,
            spacing: 0.9,
        },
        TopologyKind::GeometricDense { n: 16 },
        TopologyKind::GeometricClassic { n: 16 },
        TopologyKind::GeometricDegree { n: 16, degree: 8.0 },
        TopologyKind::Geometric {
            n: 16,
            side: 2.0,
            d: 2.0,
            gray_prob: p,
            max_attempts: 16,
        },
        TopologyKind::Clustered {
            clusters: 2,
            nodes_per_cluster: 4,
        },
        TopologyKind::TwoCliqueBridge {
            beta: 4,
            bridge_a: 0,
            bridge_b: 1,
        },
    ];
    let adversary_pool = [
        AdversaryKind::ReliableOnly,
        AdversaryKind::AllUnreliable,
        AdversaryKind::Random { p },
        AdversaryKind::Collider,
        AdversaryKind::Bursty {
            p_gb: p,
            p_bg: 1.0 - p,
        },
        AdversaryKind::CliqueIsolator,
    ];
    let workload_pool = [
        Workload::Core {
            algo: AlgoKind::Mis,
        },
        Workload::Core {
            algo: AlgoKind::Ccds { b: 256 },
        },
        Workload::Core {
            algo: AlgoKind::TauCcds {
                tau: 1,
                spurious: SpuriousSource::UnreliableNeighbors,
            },
        },
        Workload::Core {
            algo: AlgoKind::AsyncMis,
        },
        Workload::Core {
            algo: AlgoKind::ContinuousDynamic { b: 256 },
        },
        Workload::Core {
            algo: AlgoKind::Backbone {
                b: 256,
                everyone: false,
                flood_seed: 11,
                flood_budget: 1000,
            },
        },
        Workload::Hitting {
            beta: 8,
            trials: 4,
            replacement: true,
        },
        Workload::TwoCliqueSweep {
            betas: vec![4, 6],
            trials: 1,
        },
        Workload::SchedulePair { beta: 4 },
        Workload::Broadcast {
            decay: true,
            collider: false,
        },
    ];
    ScenarioSpec {
        id: format!("P{topos}x{advs}x{works}"),
        caption: "sampled property-test spec".to_string(),
        render: radio_bench::scenario::RenderKind::Generic,
        topologies: (0..topos)
            .map(|i| {
                let kind = topology_pool[i % topology_pool.len()].clone();
                if i % 2 == 0 {
                    TopologyEntry::seeded(kind, net_base ^ i as u64)
                } else {
                    TopologyEntry::new(kind)
                }
            })
            .collect(),
        adversaries: (0..advs)
            .map(|i| adversary_pool[i % adversary_pool.len()])
            .collect(),
        workloads: (0..works)
            .map(|i| {
                let mut w = WorkloadEntry::new(workload_pool[i % workload_pool.len()].clone());
                if i % 3 == 1 {
                    w.run_seed = Some(run_base + 1000 + i as u64);
                }
                if i % 4 == 2 {
                    w.det_seed = Some(run_base + 2000 + i as u64);
                }
                w
            })
            .collect(),
        trials,
        nest: if workload_major {
            NestOrder::WorkloadMajor
        } else {
            NestOrder::TopologyMajor
        },
        seeds: SeedPolicy { net_base, run_base },
        stop: if trials.is_multiple_of(2) {
            StopCondition::Default
        } else {
            StopCondition::Rounds { max: 100 + trials }
        },
        // Cycle the aggregate block through absent / simple / full so the
        // new serde surface round-trips alongside the rest of the spec.
        aggregate: match works % 3 {
            0 => None,
            1 => Some(AggregateSpec::default()),
            _ => Some(AggregateSpec {
                group_by: vec![GroupKey::N, GroupKey::Adversary],
                metrics: vec![
                    MetricSpec::labeled(MetricSource::MaxDegree, vec![Reduction::Max], "Delta"),
                    MetricSpec {
                        source: MetricSource::Extra {
                            key: format!("k{net_base}"),
                        },
                        reductions: vec![Reduction::Mean, Reduction::P90, Reduction::Ci95],
                        per: Some(Normalizer::Log3N),
                        label: None,
                        include_invalid: Some(trials.is_multiple_of(2)),
                    },
                ],
                slope: Some(SlopeSpec {
                    x: SlopeAxis::Log2N,
                    metric: 1,
                    caption: " [p = {p}]".to_string(),
                }),
            }),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn scenario_spec_roundtrips_serde(
        topos in 1usize..12,
        advs in 1usize..7,
        works in 1usize..11,
        trials in 1u64..6,
        net_base in 0u64..10_000,
        run_base in 0u64..10_000,
        workload_major in 0u8..2,
        p in 0.0f64..1.0,
    ) {
        let spec = sample_spec(
            topos, advs, works, trials, net_base, run_base, workload_major == 1, p,
        );
        let json = serde_json::to_string_pretty(&spec)
            .map_err(|e| TestCaseError(e.to_string()))?;
        let back: ScenarioSpec =
            serde_json::from_str(&json).map_err(|e| TestCaseError(e.to_string()))?;
        prop_assert_eq!(&back, &spec);
        // Compact form parses too.
        let compact = serde_json::to_string(&spec)
            .map_err(|e| TestCaseError(e.to_string()))?;
        let back2: ScenarioSpec =
            serde_json::from_str(&compact).map_err(|e| TestCaseError(e.to_string()))?;
        prop_assert_eq!(&back2, &spec);
    }

    #[test]
    fn planner_expansion_matches_grid_product(
        topos in 1usize..12,
        advs in 1usize..7,
        works in 1usize..11,
        trials in 1u64..6,
        net_base in 0u64..10_000,
        run_base in 0u64..10_000,
        workload_major in 0u8..2,
        p in 0.0f64..1.0,
    ) {
        let spec = sample_spec(
            topos, advs, works, trials, net_base, run_base, workload_major == 1, p,
        );
        let units = spec.plan();
        prop_assert_eq!(units.len(), topos * advs * works * trials as usize);
        prop_assert_eq!(units.len(), spec.grid_size());
        // Every grid cell appears exactly once per trial, and seeds are
        // derived from the declared bases plus the trial index.
        let mut seen = std::collections::BTreeSet::new();
        for u in &units {
            prop_assert!(u.topo < topos && u.adv < advs && u.work < works);
            prop_assert!(u.trial < trials);
            prop_assert!(seen.insert((u.topo, u.adv, u.work, u.trial)), "duplicate cell");
            let work = &spec.workloads[u.work];
            let net_expected = work
                .net_seed
                .or(spec.topologies[u.topo].seed)
                .unwrap_or(spec.seeds.net_base)
                + u.trial;
            prop_assert_eq!(u.net_seed, net_expected);
            let run_expected = work.run_seed.unwrap_or(spec.seeds.run_base) + u.trial;
            prop_assert_eq!(u.run_seed, run_expected);
            prop_assert_eq!(u.det_seed, work.det_seed);
        }
        // The nesting order's outermost axis is contiguous.
        let outer: Vec<usize> = units
            .iter()
            .map(|u| if workload_major == 1 { u.work } else { u.topo })
            .collect();
        let mut sorted = outer.clone();
        sorted.sort_unstable();
        prop_assert!(outer == sorted, "outermost axis not contiguous");
    }

    #[test]
    fn deterministic_topologies_draw_no_rng(
        n in 1usize..48,
        beta in 1usize..12,
        seed in 0u64..10_000,
        p in 0.0f64..1.0,
    ) {
        use rand::rngs::StdRng;
        use rand::{RngCore, SeedableRng};
        // `is_deterministic()` is what lets the scenario layer share one
        // topology build across trials (and hand whole cells to the
        // batched engine) while reconstructing each trial's detector RNG
        // from the seed alone: a deterministic kind must leave the
        // topology RNG stream exactly where it found it — even when the
        // build fails validation.
        let pool = [
            TopologyKind::Clique { n },
            TopologyKind::Path { n },
            TopologyKind::PathChords { n },
            TopologyKind::TwoCliqueBridge {
                beta,
                bridge_a: 0,
                bridge_b: beta / 2,
            },
            TopologyKind::Line { n, spacing: 0.8, d: 2.0, gray_prob: p },
            TopologyKind::Grid { cols: 3, rows: 2, spacing: 0.9 },
            TopologyKind::GeometricDense { n },
            TopologyKind::GeometricClassic { n },
            TopologyKind::GeometricDegree { n, degree: 8.0 },
            TopologyKind::Geometric { n, side: 2.0, d: 2.0, gray_prob: p, max_attempts: 16 },
            TopologyKind::Clustered { clusters: 2, nodes_per_cluster: 4 },
        ];
        let mut deterministic = 0usize;
        for kind in pool {
            if !kind.is_deterministic() {
                continue;
            }
            deterministic += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            let mut untouched = rng.clone();
            let _ = kind.build_with(&mut rng);
            for _ in 0..8 {
                prop_assert_eq!(
                    rng.next_u64(),
                    untouched.next_u64(),
                    "{:?} drew from the topology RNG",
                    kind
                );
            }
            // Zero draws also means the build cannot depend on the seed.
            let built = kind.build_with(&mut StdRng::seed_from_u64(seed));
            let rebuilt = kind.build_with(&mut StdRng::seed_from_u64(!seed));
            match (built, rebuilt) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a.g().edge_count(), b.g().edge_count()),
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "{:?}: seed changed build outcome", kind),
            }
        }
        prop_assert_eq!(deterministic, 4, "pool must cover every deterministic kind");
    }

    #[test]
    fn batched_trials_match_unbatched_index_for_index(
        trials in 0u64..200,
        width in 1u64..9,
        chunk in 1u64..50,
        salt in 0u64..1000,
    ) {
        // Batches are runs of equal `i / width` keys, broken by periodic
        // keyless indices; the context depends only on the key, so the
        // shared build (from the batch's first index) must reproduce the
        // per-index derivation exactly.
        let gap = salt % 5 + 2;
        let key_of = move |i: u64| (!i.is_multiple_of(gap)).then_some(i / width);
        let ctx_of = move |i: u64| (i / width).wrapping_mul(salt | 1);
        let f = move |ctx: Option<&u64>, i: u64| ctx.copied().unwrap_or_else(|| ctx_of(i)) ^ i;
        let expect = radio_bench::run_trials(trials, move |i| ctx_of(i) ^ i);
        let batched =
            radio_bench::parallel::run_trials_batched(trials, key_of, ctx_of, f);
        prop_assert_eq!(&batched, &expect);
        // And the chunked-range form concatenates to the same stream at
        // any chunk size (batches never span a window).
        let mut streamed = Vec::new();
        radio_bench::parallel::run_trials_batched_chunked_range(
            0..trials, chunk, key_of, ctx_of, f,
            |start, results| {
                prop_assert_eq!(start, streamed.len() as u64);
                streamed.extend(results);
                Ok(())
            },
        )?;
        prop_assert_eq!(&streamed, &expect);
    }
}
