//! Integration tests for Section 8 (dynamic detectors / continuous CCDS)
//! and Section 9 (asynchronous starts).

use radio_sim::topology::{random_geometric, RandomGeometricConfig};
use radio_sim::{
    DualGraph, DynamicDetector, EngineBuilder, Graph, IdAssignment, LinkDetectorAssignment, NodeId,
    StopReason,
};
use radio_structures::checker::check_ccds;
use radio_structures::{AsyncFilter, AsyncMis, AsyncMisParams, CcdsConfig, ContinuousCcds};
use rand::SeedableRng;

fn valid_mis(g: &Graph, out: &[Option<bool>]) -> bool {
    out.iter().all(Option::is_some)
        && g.edges()
            .all(|(u, v)| !(out[u] == Some(true) && out[v] == Some(true)))
        && (0..g.n())
            .all(|v| out[v] != Some(false) || g.neighbors(v).iter().any(|&u| out[u] == Some(true)))
}

#[test]
fn theorem_8_1_recovery_deadline() {
    // Dynamic detector stabilizing mid-cycle: by stabilization + 2δ the
    // published structure must pass the checker.
    let n = 8usize;
    let g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap();
    let net = DualGraph::classic(g).unwrap();
    let ids = IdAssignment::identity(n);
    let good = LinkDetectorAssignment::zero_complete(&net, &ids);
    let sparse = {
        let mut sets: Vec<std::collections::BTreeSet<u32>> =
            (0..n).map(|v| good.set(NodeId(v)).clone()).collect();
        for set in sets.iter_mut().skip(1) {
            if let Some(&first) = set.iter().next() {
                set.remove(&first);
            }
        }
        LinkDetectorAssignment::from_sets(sets)
    };
    let cfg = CcdsConfig::new(n, net.max_degree_g(), 256);
    let delta = ContinuousCcds::new(&cfg, radio_sim::ProcessId::new(1).unwrap())
        .unwrap()
        .cycle_len();
    for stabilize_at in [2u64, delta / 3, delta - 1] {
        let dyn_det = DynamicDetector::new(vec![
            (1, sparse.clone()),
            (stabilize_at.max(2), good.clone()),
        ])
        .unwrap();
        let h = good.h_graph(&ids);
        let mut engine = EngineBuilder::new(net.clone())
            .seed(31)
            .detector(dyn_det)
            .spawn(|info| ContinuousCcds::new(&cfg, info.id).unwrap())
            .unwrap();
        engine.run_rounds(stabilize_at.max(2) + 2 * delta + 1);
        let report = check_ccds(&net, &h, &engine.outputs());
        assert!(
            report.terminated && report.connected && report.dominating,
            "stabilize_at = {stabilize_at}: {report:?}"
        );
    }
}

#[test]
fn continuous_ccds_stable_across_many_cycles() {
    // With a static detector, every published cycle must be valid.
    let n = 8usize;
    let g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1))).unwrap();
    let net = DualGraph::classic(g).unwrap();
    let ids = IdAssignment::identity(n);
    let det = LinkDetectorAssignment::zero_complete(&net, &ids);
    let h = det.h_graph(&ids);
    let cfg = CcdsConfig::new(n, net.max_degree_g(), 256);
    let mut engine = EngineBuilder::new(net.clone())
        .seed(33)
        .spawn(|info| ContinuousCcds::new(&cfg, info.id).unwrap())
        .unwrap();
    let delta = engine.procs()[0].cycle_len();
    for cycle in 1..=3u64 {
        engine.run_rounds(delta);
        // One extra round lets the publish-at-boundary happen.
        engine.run_rounds(1);
        let report = check_ccds(&net, &h, &engine.outputs());
        assert!(
            report.terminated && report.connected && report.dominating,
            "cycle {cycle}: {report:?}"
        );
        assert!(engine.procs().iter().all(|p| p.cycles_completed() >= cycle));
        // Re-sync to the cycle grid (we consumed one extra round).
        engine.run_rounds(delta - 1);
    }
}

#[test]
fn async_mis_with_adversarial_wakeups_classic() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(900);
    let mut cfg = RandomGeometricConfig::dense(40);
    cfg.gray_prob = 0.0;
    let net = random_geometric(&cfg, &mut rng).unwrap();
    let g = net.g().clone();
    let params = AsyncMisParams::default();
    let epoch = params.epoch_len(40);
    // Bursty wakeups: three waves half an epoch apart, plus stragglers.
    let wakes: Vec<u64> = (0..40)
        .map(|i| match i % 4 {
            0 => 1,
            1 => 1 + epoch / 2,
            2 => 1 + epoch,
            _ => 1 + 3 * epoch,
        })
        .collect();
    let mut engine = EngineBuilder::new(net)
        .seed(41)
        .wake_rounds(wakes)
        .spawn(|info| AsyncMis::new(info.n, info.id, params, AsyncFilter::AcceptAll))
        .unwrap();
    let out = engine.run(400 * epoch);
    assert_eq!(out.stop, StopReason::AllDone);
    assert!(valid_mis(&g, &engine.outputs()));
}

#[test]
fn async_mis_dual_graph_with_detectors_and_adversary() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(901);
    let net = random_geometric(&RandomGeometricConfig::dense(32), &mut rng).unwrap();
    let g = net.g().clone();
    let params = AsyncMisParams::default();
    let epoch = params.epoch_len(32);
    let wakes: Vec<u64> = (0..32).map(|i| 1 + (i as u64 % 5) * (epoch / 3)).collect();
    let mut engine = EngineBuilder::new(net)
        .seed(43)
        .wake_rounds(wakes)
        .adversary(radio_sim::adversary::Collider)
        .spawn(|info| AsyncMis::new(info.n, info.id, params, AsyncFilter::Detector))
        .unwrap();
    let out = engine.run(400 * epoch);
    assert_eq!(out.stop, StopReason::AllDone);
    assert!(valid_mis(&g, &engine.outputs()));
}

#[test]
fn async_latency_measured_from_wake_not_round_one() {
    let g = Graph::from_edges(6, (0..5).map(|i| (i, i + 1))).unwrap();
    let net = DualGraph::classic(g).unwrap();
    let params = AsyncMisParams::default();
    let late_wake = 5_000u64;
    let mut engine = EngineBuilder::new(net)
        .seed(45)
        .wake_rounds(vec![1, 1, 1, 1, 1, late_wake])
        .spawn(|info| AsyncMis::new(info.n, info.id, params, AsyncFilter::AcceptAll))
        .unwrap();
    engine.run(late_wake + 200 * params.epoch_len(6));
    let lat = engine.decided_latency(NodeId(5)).unwrap();
    let abs = engine.decided_round(NodeId(5)).unwrap();
    assert_eq!(lat, abs - late_wake + 1);
    // The straggler's latency is measured from its own wake-up and must be
    // modest even though it woke thousands of rounds in.
    assert!(lat < 100 * params.epoch_len(6));
}
