//! Concurrency regression test for scoped thread pools: two radio-lab
//! style sweeps running **simultaneously** on separate [`ThreadPool`]s
//! must produce results bit-identical to their serial runs.
//!
//! This pins the bug the scoped pool fixed: `radio-lab --threads` used to
//! publish its width through the process-global `RAYON_NUM_THREADS`, so a
//! second lab (or a test harness running labs in parallel) could observe a
//! half-configured environment and change its own parallelism mid-sweep.
//! Pools are now per-run values — nothing global moves.

use radio_bench::scenario::{
    run_spec, NestOrder, RenderKind, ScenarioSpec, SeedPolicy, StopCondition, TopologyEntry,
    WorkloadEntry,
};
use radio_bench::{run_trials, run_trials_in, ScenarioRun, ThreadPool};
use radio_sim::spec::{AdversaryKind, TopologyKind};
use radio_structures::runner::AlgoKind;

fn lab_spec(id: &str, n: usize, net_base: u64) -> ScenarioSpec {
    ScenarioSpec {
        id: id.to_string(),
        caption: "concurrent scoped-pool regression".to_string(),
        render: RenderKind::Generic,
        topologies: vec![TopologyEntry::new(TopologyKind::GeometricDense { n })],
        adversaries: vec![
            AdversaryKind::ReliableOnly,
            AdversaryKind::Random { p: 0.5 },
        ],
        workloads: vec![WorkloadEntry::core(AlgoKind::Mis)],
        trials: 3,
        nest: NestOrder::TopologyMajor,
        seeds: SeedPolicy {
            net_base,
            run_base: net_base + 7,
        },
        stop: StopCondition::Default,
        aggregate: None,
    }
}

/// Records and units must match; wall-clock may differ.
fn assert_same_results(a: &ScenarioRun, b: &ScenarioRun, what: &str) {
    assert_eq!(a.units, b.units, "{what}: planned units differ");
    assert_eq!(a.records, b.records, "{what}: records differ");
}

#[test]
fn concurrent_labs_on_scoped_pools_match_their_serial_runs() {
    let spec_a = lab_spec("LAB-A", 24, 300);
    let spec_b = lab_spec("LAB-B", 32, 900);
    // Serial ground truth: a one-thread pool is exactly the serial loop.
    let serial_a = ThreadPool::new(1).install(|| run_spec(&spec_a));
    let serial_b = ThreadPool::new(1).install(|| run_spec(&spec_b));

    // Two labs at once, different pool widths, interleaved on the OS
    // scheduler. Each must reproduce its serial run bit-for-bit.
    let (par_a, par_b) = std::thread::scope(|s| {
        let ha = s.spawn(|| ThreadPool::new(4).install(|| run_spec(&spec_a)));
        let hb = s.spawn(|| ThreadPool::new(2).install(|| run_spec(&spec_b)));
        (ha.join().expect("lab A"), hb.join().expect("lab B"))
    });
    assert_same_results(&serial_a, &par_a, "lab A");
    assert_same_results(&serial_b, &par_b, "lab B");
}

#[test]
fn pool_width_does_not_leak_between_runs() {
    let spec = lab_spec("LAB-L", 16, 40);
    let wide = ThreadPool::new(8).install(|| run_spec(&spec));
    // After install returns, the ambient configuration is restored — the
    // next run (no pool) must still match.
    let ambient = run_spec(&spec);
    assert_same_results(&wide, &ambient, "leak check");
}

#[test]
fn run_trials_in_matches_run_trials_under_concurrency() {
    let work = |t: u64| -> u64 {
        // Enough computation per trial for threads to really interleave.
        (0..2_000).fold(t, |acc, i| {
            acc.wrapping_mul(6364136223846793005).wrapping_add(i)
        })
    };
    let expect = run_trials(64, work);
    std::thread::scope(|s| {
        for width in [1usize, 3, 5] {
            let expect = &expect;
            s.spawn(move || {
                let pool = ThreadPool::new(width);
                assert_eq!(&run_trials_in(&pool, 64, work), expect, "width {width}");
            });
        }
    });
}
