//! Determinism regression tests for the engine rewrites.
//!
//! The scratch-buffer engine (`Engine::step`) must produce executions
//! *identical* to the seed implementation (`Engine::step_legacy`) — same
//! per-round trace (broadcasters, deliveries, collisions, activated
//! edges), same metrics, same outputs — for every adversary, because both
//! drive the same process RNG streams. The word-packed tier
//! (`Engine::step_bitset`) is pinned to `step` by the same differential
//! contract, tier by tier. And the parallel trial runner must be
//! bit-identical to the serial loop it replaced.

use radio_sim::adversary::{
    AllUnreliable, BurstyUnreliable, CliqueIsolator, Collider, RandomUnreliable, ReliableOnly,
};
use radio_sim::topology::{random_geometric, RandomGeometricConfig};
use radio_sim::{
    Action, Adversary, BatchedEngine, Context, DualGraph, Engine, EngineBuilder, Graph, Process,
    StopReason, Trace,
};
use rand::SeedableRng;

/// A randomized chatterer with a per-node output round, exercising decide,
/// receive, outputs, and the RNG streams.
struct Talker {
    heard: Vec<Option<u32>>,
    done_after: u64,
    rounds: u64,
}

impl Process for Talker {
    type Msg = u32;

    fn decide(&mut self, ctx: &mut Context<'_>) -> Action<u32> {
        use rand::Rng;
        self.rounds += 1;
        if ctx.rng.gen_bool(0.2) {
            Action::Broadcast(ctx.my_id.get() * 1000 + (self.rounds % 997) as u32)
        } else {
            Action::Idle
        }
    }

    fn receive(&mut self, _: &mut Context<'_>, msg: Option<&u32>) {
        self.heard.push(msg.copied());
    }

    fn output(&self) -> Option<bool> {
        (self.rounds >= self.done_after).then_some(true)
    }

    fn is_done(&self) -> bool {
        false
    }
}

fn nets() -> Vec<(&'static str, DualGraph)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let rgg = random_geometric(&RandomGeometricConfig::dense(48), &mut rng)
        .expect("dense configuration connects");
    let path_with_chords = {
        let g = Graph::from_edges(16, (0..15).map(|i| (i, i + 1))).expect("path");
        let mut gp = g.clone();
        for i in 0..14 {
            gp.add_edge(i, i + 2);
        }
        DualGraph::new(g, gp).expect("valid dual graph")
    };
    let classic = DualGraph::classic(Graph::complete(10)).expect("connected");
    // 70 nodes total: the bitset rows span two words, crossing the word
    // boundary the smaller nets never reach.
    let two_clique = radio_sim::spec::TopologyKind::TwoCliqueBridge {
        beta: 35,
        bridge_a: 3,
        bridge_b: 7,
    }
    .build(0)
    .expect("two-clique builds");
    vec![
        ("rgg-48", rgg),
        ("chords-16", path_with_chords),
        ("clique-10", classic),
        ("two-clique-35", two_clique),
    ]
}

type AdversaryFactory = Box<dyn Fn() -> Box<dyn Adversary>>;

fn adversaries() -> Vec<(&'static str, AdversaryFactory)> {
    vec![
        ("reliable-only", Box::new(|| Box::new(ReliableOnly))),
        ("all-unreliable", Box::new(|| Box::new(AllUnreliable))),
        (
            "random-0.5",
            Box::new(|| Box::new(RandomUnreliable::new(0.5, 5))),
        ),
        (
            "random-0.1",
            Box::new(|| Box::new(RandomUnreliable::new(0.1, 5))),
        ),
        ("collider", Box::new(|| Box::new(Collider))),
        (
            "bursty",
            Box::new(|| Box::new(BurstyUnreliable::new(0.1, 0.1, 6))),
        ),
        ("isolator", Box::new(|| Box::new(CliqueIsolator))),
    ]
}

/// Everything observable about one execution: trace, per-node receive
/// transcripts, outputs, and aggregate metrics.
type Capture = (
    Option<Trace>,
    Vec<Vec<Option<u32>>>,
    Vec<Option<bool>>,
    radio_sim::ExecutionMetrics,
);

/// Which engine implementation a capture steps through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Tier {
    Legacy,
    Scalar,
    Bitset,
    Batched,
}

/// Runs `rounds` rounds and captures a [`Capture`] for one engine tier.
fn capture(
    net: &DualGraph,
    adversary: Box<dyn Adversary>,
    seed: u64,
    rounds: u64,
    tier: Tier,
    record_trace: bool,
) -> Capture {
    let mut engine = EngineBuilder::new(net.clone())
        .seed(seed)
        .adversary(adversary)
        .record_trace(record_trace)
        .spawn(|info| Talker {
            heard: Vec::new(),
            done_after: 10 + info.id.get() as u64 % 7,
            rounds: 0,
        })
        .expect("engine assembles");
    for _ in 0..rounds {
        match tier {
            Tier::Legacy => engine.step_legacy(),
            Tier::Scalar => engine.step(),
            Tier::Bitset => engine.step_bitset(),
            Tier::Batched => engine.step_batched(),
        }
    }
    capture_engine(&engine)
}

/// The [`Capture`] of an engine in whatever state it is in.
fn capture_engine(engine: &Engine<Talker>) -> Capture {
    let heard = engine.procs().iter().map(|p| p.heard.clone()).collect();
    (
        engine.trace().cloned(),
        heard,
        engine.outputs(),
        *engine.metrics(),
    )
}

/// Asserts the differential contract between two tiers over the full
/// net × adversary × seed grid.
fn assert_tiers_agree(reference: Tier, candidate: Tier) {
    for (net_name, net) in nets() {
        for (adv_name, make) in adversaries() {
            for seed in [1u64, 42] {
                let new = capture(&net, make(), seed, 60, candidate, true);
                let old = capture(&net, make(), seed, 60, reference, true);
                let ctx =
                    format!("{net_name}/{adv_name}/seed {seed} ({candidate:?} vs {reference:?})");
                assert_eq!(new.0, old.0, "trace diverged on {ctx}");
                assert_eq!(new.1, old.1, "receive transcripts diverged on {ctx}");
                assert_eq!(new.2, old.2, "outputs diverged on {ctx}");
                assert_eq!(new.3, old.3, "metrics diverged on {ctx}");
            }
        }
    }
}

#[test]
fn golden_trace_scratch_matches_legacy() {
    assert_tiers_agree(Tier::Legacy, Tier::Scalar);
}

#[test]
fn golden_trace_bitset_matches_scratch() {
    assert_tiers_agree(Tier::Scalar, Tier::Bitset);
}

#[test]
fn golden_trace_batched_matches_bitset() {
    // The batch-of-one face of the fourth tier: `Engine::step_batched`
    // must reproduce the bitset tier exactly (which the chain pins to
    // scalar, which is pinned to legacy).
    assert_tiers_agree(Tier::Bitset, Tier::Batched);
}

#[test]
fn tracing_off_does_not_change_behavior() {
    // The scalar no-trace fast path skips non-incident proposal
    // processing; the bitset path normalizes unconditionally. Either way
    // the observable execution must not depend on whether a trace records.
    for tier in [Tier::Scalar, Tier::Bitset, Tier::Batched] {
        for (net_name, net) in nets() {
            for (adv_name, make) in adversaries() {
                let traced = capture(&net, make(), 7, 60, tier, true);
                let untraced = capture(&net, make(), 7, 60, tier, false);
                assert_eq!(
                    traced.1, untraced.1,
                    "transcripts diverged on {net_name}/{adv_name} ({tier:?})"
                );
                assert_eq!(
                    traced.2, untraced.2,
                    "outputs diverged on {net_name}/{adv_name} ({tier:?})"
                );
                assert_eq!(
                    traced.3, untraced.3,
                    "metrics diverged on {net_name}/{adv_name} ({tier:?})"
                );
            }
        }
    }
}

/// An adversary emitting unsorted, duplicated, reversed, and invalid
/// pairs — exercising the engine's disorder fallback path.
struct MessyAdversary {
    inner: RandomUnreliable,
}

impl Adversary for MessyAdversary {
    fn extra_edges(
        &mut self,
        round: u64,
        net: &DualGraph,
        broadcasting: &[bool],
        out: &mut Vec<(usize, usize)>,
    ) {
        self.inner.extra_edges(round, net, broadcasting, out);
        // Duplicate everything reversed, append garbage, and scramble.
        let picked: Vec<(usize, usize)> = out.clone();
        for &(u, v) in &picked {
            out.push((v, u));
        }
        out.push((net.n() + 5, 0));
        out.push((3, 3));
        out.reverse();
    }

    fn name(&self) -> &'static str {
        "messy"
    }
}

#[test]
fn disorderly_adversaries_are_normalized_identically() {
    let messy = || {
        Box::new(MessyAdversary {
            inner: RandomUnreliable::new(0.4, 9),
        })
    };
    for (net_name, net) in nets() {
        let old = capture(&net, messy(), 3, 60, Tier::Legacy, true);
        for tier in [Tier::Scalar, Tier::Bitset, Tier::Batched] {
            let new = capture(&net, messy(), 3, 60, tier, true);
            assert_eq!(
                new.0, old.0,
                "trace diverged on {net_name}/messy ({tier:?})"
            );
            assert_eq!(
                new.1, old.1,
                "transcripts diverged on {net_name}/messy ({tier:?})"
            );
            assert_eq!(
                new.3, old.3,
                "metrics diverged on {net_name}/messy ({tier:?})"
            );
            // And the no-trace path agrees on everything observable.
            let untraced = capture(&net, messy(), 3, 60, tier, false);
            assert_eq!(
                new.1, untraced.1,
                "no-trace transcripts diverged on {net_name}/messy ({tier:?})"
            );
            assert_eq!(
                new.3, untraced.3,
                "no-trace metrics diverged on {net_name}/messy ({tier:?})"
            );
        }
    }
}

/// A process alternating silence and broadcast rounds: chatty nodes
/// broadcast on odd local rounds, nobody on even ones.
struct AlternatingChatter {
    chatty: bool,
    heard: Vec<Option<u32>>,
    rounds: u64,
}

impl Process for AlternatingChatter {
    type Msg = u32;

    fn decide(&mut self, ctx: &mut Context<'_>) -> Action<u32> {
        self.rounds += 1;
        if self.chatty && self.rounds % 2 == 1 {
            Action::Broadcast(ctx.my_id.get())
        } else {
            Action::Idle
        }
    }

    fn receive(&mut self, _: &mut Context<'_>, msg: Option<&u32>) {
        self.heard.push(msg.copied());
    }

    fn output(&self) -> Option<bool> {
        None
    }

    fn is_done(&self) -> bool {
        false
    }
}

#[test]
fn bitset_clears_reach_words_on_broadcaster_less_rounds() {
    // The PR 1 phantom-delivery bug class: reach state surviving a
    // broadcaster-less round delivers ghosts in the next one. The bitset
    // tier must clear its seen/collide words every round — including empty
    // ones — exactly as the scalar tier's epoch advances unconditionally.
    // Alternate dense rounds (every node broadcasts → all-collide silence)
    // with empty rounds; a single-broadcaster variant then checks clean
    // deliveries don't echo.
    let net = DualGraph::classic(Graph::complete(12)).expect("connected");
    let run = |tier: Tier, all_chatty: bool| {
        let mut engine = EngineBuilder::new(net.clone())
            .seed(3)
            .record_trace(true)
            .spawn(|info| AlternatingChatter {
                chatty: all_chatty || info.node.index() == 0,
                heard: Vec::new(),
                rounds: 0,
            })
            .expect("engine assembles");
        for _ in 0..40 {
            match tier {
                Tier::Legacy => engine.step_legacy(),
                Tier::Scalar => engine.step(),
                Tier::Bitset => engine.step_bitset(),
                Tier::Batched => engine.step_batched(),
            }
        }
        let heard: Vec<Vec<Option<u32>>> = engine.procs().iter().map(|p| p.heard.clone()).collect();
        (engine.trace().cloned(), heard, *engine.metrics())
    };
    for all_chatty in [true, false] {
        let bitset = run(Tier::Bitset, all_chatty);
        assert_eq!(
            bitset,
            run(Tier::Scalar, all_chatty),
            "bitset diverged from scalar (all_chatty = {all_chatty})"
        );
        assert_eq!(
            bitset,
            run(Tier::Legacy, all_chatty),
            "bitset diverged from legacy (all_chatty = {all_chatty})"
        );
        assert_eq!(
            bitset,
            run(Tier::Batched, all_chatty),
            "batched diverged from bitset (all_chatty = {all_chatty})"
        );
    }
    // Dense variant: odd rounds are all-broadcast (nobody listens); the
    // even rounds must hear silence at every node — any Some here is a
    // phantom delivery from stale reach words.
    let dense = run(Tier::Bitset, true);
    for heard in &dense.1 {
        assert_eq!(heard.len(), 20, "one reception per even round");
        assert!(
            heard.iter().all(Option::is_none),
            "phantom delivery on an empty round"
        );
    }
    assert_eq!(dense.2.deliveries, 0);
    // Solo variant: node 0 delivers cleanly on odd rounds; a stale *seen*
    // bit surviving into the following empty round would re-deliver it.
    let solo = run(Tier::Bitset, false);
    for heard in &solo.1[1..] {
        assert_eq!(heard.len(), 40, "listeners receive every round");
        for (i, h) in heard.iter().enumerate() {
            if i % 2 == 0 {
                assert!(h.is_some(), "clean delivery expected on odd rounds");
            } else {
                assert!(h.is_none(), "phantom delivery echoed into an empty round");
            }
        }
    }
}

/// Spawns one traced [`Talker`] engine on `net` with trial seed `seed`.
fn spawn_talker(net: &DualGraph, adversary: Box<dyn Adversary>, seed: u64) -> Engine<Talker> {
    EngineBuilder::new(net.clone())
        .seed(seed)
        .adversary(adversary)
        .record_trace(true)
        .spawn(|info| Talker {
            heard: Vec::new(),
            done_after: 10 + info.id.get() as u64 % 7,
            rounds: 0,
        })
        .expect("engine assembles")
}

/// Runs a B-trial [`BatchedEngine`] in lockstep and asserts every trial is
/// bit-identical to its solo bitset run.
fn assert_batch_matches_solo(
    net_name: &str,
    net: &DualGraph,
    adv_name: &str,
    make: &dyn Fn() -> Box<dyn Adversary>,
    b: usize,
) {
    let engines = (0..b)
        .map(|t| spawn_talker(net, make(), 11 + t as u64))
        .collect();
    let mut batch = BatchedEngine::new(engines);
    batch.run_rounds_each(60);
    for (t, engine) in batch.engines().iter().enumerate() {
        let solo = capture(net, make(), 11 + t as u64, 60, Tier::Bitset, true);
        let got = capture_engine(engine);
        let ctx = format!("{net_name}/{adv_name}/B={b}/trial {t}");
        assert_eq!(got.0, solo.0, "trace diverged on {ctx}");
        assert_eq!(got.1, solo.1, "receive transcripts diverged on {ctx}");
        assert_eq!(got.2, solo.2, "outputs diverged on {ctx}");
        assert_eq!(got.3, solo.3, "metrics diverged on {ctx}");
    }
}

#[test]
fn batched_trials_match_solo_runs() {
    // Struct-of-arrays lockstep at B ∈ {1, 2, 7} over the full net ×
    // adversary grid, including the malformed adversary: every trial of a
    // batch must reproduce its solo run exactly — traces, transcripts,
    // outputs, metrics. Per-trial RNG streams are untouched by batching,
    // so interleaving phases across trials is invisible.
    let mut advs = adversaries();
    advs.push((
        "messy",
        Box::new(|| {
            Box::new(MessyAdversary {
                inner: RandomUnreliable::new(0.4, 9),
            }) as Box<dyn Adversary>
        }),
    ));
    for (net_name, net) in nets() {
        for (adv_name, make) in &advs {
            for b in [1usize, 2, 7] {
                assert_batch_matches_solo(net_name, &net, adv_name, make.as_ref(), b);
            }
        }
    }
}

#[test]
fn batched_trials_match_solo_runs_at_full_trial_word() {
    // B = 64 fills a whole broadcaster-mask word (bit 63 of every mask
    // entry in use) — the trial-word saturation point. Trimmed to one
    // two-word net and two adversaries to keep debug-build runtime sane.
    let (net_name, net) = nets().remove(3); // two-clique-35: 70 nodes
    for (adv_name, make) in [
        (
            "random-0.5",
            Box::new(|| Box::new(RandomUnreliable::new(0.5, 5)) as Box<dyn Adversary>)
                as AdversaryFactory,
        ),
        ("collider", Box::new(|| Box::new(Collider))),
    ] {
        assert_batch_matches_solo(net_name, &net, adv_name, make.as_ref(), 64);
    }
}

#[test]
fn batched_run_each_mirrors_solo_stop_rules() {
    // Trials finishing at different rounds: each batched outcome (round
    // count and stop reason, AllDone checked before MaxRounds) must equal
    // the solo `Engine::run`, and a finished trial must stop advancing —
    // its round counter, metrics, and RNG freeze while the rest of the
    // batch keeps stepping.
    struct Sleeper {
        limit: u64,
        rounds: u64,
    }
    impl Process for Sleeper {
        type Msg = u32;
        fn decide(&mut self, ctx: &mut Context<'_>) -> Action<u32> {
            use rand::Rng;
            self.rounds += 1;
            if ctx.rng.gen_bool(0.5) {
                Action::Broadcast(ctx.my_id.get())
            } else {
                Action::Idle
            }
        }
        fn receive(&mut self, _: &mut Context<'_>, _: Option<&u32>) {}
        fn output(&self) -> Option<bool> {
            None
        }
        fn is_done(&self) -> bool {
            self.rounds >= self.limit
        }
    }
    let net = DualGraph::classic(Graph::complete(9)).expect("connected");
    let spawn = |seed: u64, limit: u64| {
        EngineBuilder::new(net.clone())
            .seed(seed)
            .spawn(move |info| Sleeper {
                limit: limit + info.id.get() as u64 % 3,
                rounds: 0,
            })
            .expect("engine assembles")
    };
    let limits = [3u64, 50, 12, 1, 26]; // 50 overruns the budget → MaxRounds
    let engines = limits
        .iter()
        .enumerate()
        .map(|(t, &limit)| spawn(t as u64, limit))
        .collect();
    let mut batch = BatchedEngine::new(engines);
    let outcomes = batch.run_each(30);
    assert!(outcomes.iter().any(|o| o.stop == StopReason::MaxRounds));
    assert!(outcomes.iter().any(|o| o.stop == StopReason::AllDone));
    for (t, &limit) in limits.iter().enumerate() {
        let mut solo = spawn(t as u64, limit);
        let out = solo.run(30);
        assert_eq!(outcomes[t], out, "trial {t} outcome");
        assert_eq!(batch.engines()[t].round(), solo.round(), "trial {t} round");
        assert_eq!(
            batch.engines()[t].metrics(),
            solo.metrics(),
            "trial {t} metrics"
        );
        assert_eq!(
            batch.engines()[t].outputs(),
            solo.outputs(),
            "trial {t} outputs"
        );
    }
}

#[test]
fn parallel_trials_match_serial() {
    let trial = |s: u64| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(500 + s);
        let net = random_geometric(&RandomGeometricConfig::dense(32), &mut rng)
            .expect("dense configuration connects");
        let run = radio_structures::runner::run_mis(
            &net,
            radio_structures::params::MisParams::default(),
            radio_structures::runner::AdversaryKind::Random { p: 0.5 },
            s,
        );
        (run.outputs, run.solve_round, run.metrics)
    };
    let parallel = radio_bench::run_trials(8, trial);
    let serial: Vec<_> = (0..8).map(trial).collect();
    assert_eq!(parallel, serial);
}
