//! Determinism regression tests for the engine rewrite.
//!
//! The scratch-buffer engine (`Engine::step`) must produce executions
//! *identical* to the seed implementation (`Engine::step_legacy`) — same
//! per-round trace (broadcasters, deliveries, collisions, activated
//! edges), same metrics, same outputs — for every adversary, because both
//! drive the same process RNG streams. And the parallel trial runner must
//! be bit-identical to the serial loop it replaced.

use radio_sim::adversary::{
    AllUnreliable, BurstyUnreliable, CliqueIsolator, Collider, RandomUnreliable, ReliableOnly,
};
use radio_sim::topology::{random_geometric, RandomGeometricConfig};
use radio_sim::{Action, Adversary, Context, DualGraph, EngineBuilder, Graph, Process, Trace};
use rand::SeedableRng;

/// A randomized chatterer with a per-node output round, exercising decide,
/// receive, outputs, and the RNG streams.
struct Talker {
    heard: Vec<Option<u32>>,
    done_after: u64,
    rounds: u64,
}

impl Process for Talker {
    type Msg = u32;

    fn decide(&mut self, ctx: &mut Context<'_>) -> Action<u32> {
        use rand::Rng;
        self.rounds += 1;
        if ctx.rng.gen_bool(0.2) {
            Action::Broadcast(ctx.my_id.get() * 1000 + (self.rounds % 997) as u32)
        } else {
            Action::Idle
        }
    }

    fn receive(&mut self, _: &mut Context<'_>, msg: Option<&u32>) {
        self.heard.push(msg.copied());
    }

    fn output(&self) -> Option<bool> {
        (self.rounds >= self.done_after).then_some(true)
    }

    fn is_done(&self) -> bool {
        false
    }
}

fn nets() -> Vec<(&'static str, DualGraph)> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let rgg = random_geometric(&RandomGeometricConfig::dense(48), &mut rng)
        .expect("dense configuration connects");
    let path_with_chords = {
        let g = Graph::from_edges(16, (0..15).map(|i| (i, i + 1))).expect("path");
        let mut gp = g.clone();
        for i in 0..14 {
            gp.add_edge(i, i + 2);
        }
        DualGraph::new(g, gp).expect("valid dual graph")
    };
    let classic = DualGraph::classic(Graph::complete(10)).expect("connected");
    vec![
        ("rgg-48", rgg),
        ("chords-16", path_with_chords),
        ("clique-10", classic),
    ]
}

type AdversaryFactory = Box<dyn Fn() -> Box<dyn Adversary>>;

fn adversaries() -> Vec<(&'static str, AdversaryFactory)> {
    vec![
        ("reliable-only", Box::new(|| Box::new(ReliableOnly))),
        ("all-unreliable", Box::new(|| Box::new(AllUnreliable))),
        (
            "random-0.5",
            Box::new(|| Box::new(RandomUnreliable::new(0.5, 5))),
        ),
        (
            "random-0.1",
            Box::new(|| Box::new(RandomUnreliable::new(0.1, 5))),
        ),
        ("collider", Box::new(|| Box::new(Collider))),
        (
            "bursty",
            Box::new(|| Box::new(BurstyUnreliable::new(0.1, 0.1, 6))),
        ),
        ("isolator", Box::new(|| Box::new(CliqueIsolator))),
    ]
}

/// Everything observable about one execution: trace, per-node receive
/// transcripts, outputs, and aggregate metrics.
type Capture = (
    Option<Trace>,
    Vec<Vec<Option<u32>>>,
    Vec<Option<bool>>,
    radio_sim::ExecutionMetrics,
);

/// Runs `rounds` rounds and captures a [`Capture`] for either engine
/// implementation.
fn capture(
    net: &DualGraph,
    adversary: Box<dyn Adversary>,
    seed: u64,
    rounds: u64,
    legacy: bool,
    record_trace: bool,
) -> Capture {
    let mut engine = EngineBuilder::new(net.clone())
        .seed(seed)
        .adversary(adversary)
        .record_trace(record_trace)
        .spawn(|info| Talker {
            heard: Vec::new(),
            done_after: 10 + info.id.get() as u64 % 7,
            rounds: 0,
        })
        .expect("engine assembles");
    for _ in 0..rounds {
        if legacy {
            engine.step_legacy();
        } else {
            engine.step();
        }
    }
    let heard = engine.procs().iter().map(|p| p.heard.clone()).collect();
    (
        engine.trace().cloned(),
        heard,
        engine.outputs(),
        *engine.metrics(),
    )
}

#[test]
fn golden_trace_scratch_matches_legacy() {
    for (net_name, net) in nets() {
        for (adv_name, make) in adversaries() {
            for seed in [1u64, 42] {
                let new = capture(&net, make(), seed, 60, false, true);
                let old = capture(&net, make(), seed, 60, true, true);
                assert_eq!(
                    new.0, old.0,
                    "trace diverged on {net_name}/{adv_name}/seed {seed}"
                );
                assert_eq!(
                    new.1, old.1,
                    "receive transcripts diverged on {net_name}/{adv_name}/seed {seed}"
                );
                assert_eq!(new.2, old.2, "outputs diverged on {net_name}/{adv_name}");
                assert_eq!(new.3, old.3, "metrics diverged on {net_name}/{adv_name}");
            }
        }
    }
}

#[test]
fn tracing_off_does_not_change_behavior() {
    // The no-trace fast path skips non-incident proposal processing; the
    // observable execution must be unchanged.
    for (net_name, net) in nets() {
        for (adv_name, make) in adversaries() {
            let traced = capture(&net, make(), 7, 60, false, true);
            let untraced = capture(&net, make(), 7, 60, false, false);
            assert_eq!(
                traced.1, untraced.1,
                "transcripts diverged on {net_name}/{adv_name}"
            );
            assert_eq!(
                traced.2, untraced.2,
                "outputs diverged on {net_name}/{adv_name}"
            );
            assert_eq!(
                traced.3, untraced.3,
                "metrics diverged on {net_name}/{adv_name}"
            );
        }
    }
}

/// An adversary emitting unsorted, duplicated, reversed, and invalid
/// pairs — exercising the engine's disorder fallback path.
struct MessyAdversary {
    inner: RandomUnreliable,
}

impl Adversary for MessyAdversary {
    fn extra_edges(
        &mut self,
        round: u64,
        net: &DualGraph,
        broadcasting: &[bool],
        out: &mut Vec<(usize, usize)>,
    ) {
        self.inner.extra_edges(round, net, broadcasting, out);
        // Duplicate everything reversed, append garbage, and scramble.
        let picked: Vec<(usize, usize)> = out.clone();
        for &(u, v) in &picked {
            out.push((v, u));
        }
        out.push((net.n() + 5, 0));
        out.push((3, 3));
        out.reverse();
    }

    fn name(&self) -> &'static str {
        "messy"
    }
}

#[test]
fn disorderly_adversaries_are_normalized_identically() {
    for (net_name, net) in nets() {
        let new = capture(
            &net,
            Box::new(MessyAdversary {
                inner: RandomUnreliable::new(0.4, 9),
            }),
            3,
            60,
            false,
            true,
        );
        let old = capture(
            &net,
            Box::new(MessyAdversary {
                inner: RandomUnreliable::new(0.4, 9),
            }),
            3,
            60,
            true,
            true,
        );
        assert_eq!(new.0, old.0, "trace diverged on {net_name}/messy");
        assert_eq!(new.1, old.1, "transcripts diverged on {net_name}/messy");
        assert_eq!(new.3, old.3, "metrics diverged on {net_name}/messy");
        // And the no-trace path agrees on everything observable.
        let untraced = capture(
            &net,
            Box::new(MessyAdversary {
                inner: RandomUnreliable::new(0.4, 9),
            }),
            3,
            60,
            false,
            false,
        );
        assert_eq!(
            new.1, untraced.1,
            "no-trace transcripts diverged on {net_name}/messy"
        );
        assert_eq!(
            new.3, untraced.3,
            "no-trace metrics diverged on {net_name}/messy"
        );
    }
}

#[test]
fn parallel_trials_match_serial() {
    let trial = |s: u64| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(500 + s);
        let net = random_geometric(&RandomGeometricConfig::dense(32), &mut rng)
            .expect("dense configuration connects");
        let run = radio_structures::runner::run_mis(
            &net,
            radio_structures::params::MisParams::default(),
            radio_structures::runner::AdversaryKind::Random { p: 0.5 },
            s,
        );
        (run.outputs, run.solve_round, run.metrics)
    };
    let parallel = radio_bench::run_trials(8, trial);
    let serial: Vec<_> = (0..8).map(trial).collect();
    assert_eq!(parallel, serial);
}
