//! Property-based tests (proptest) on the substrate invariants: graphs,
//! dual graphs, overlays, detectors, id assignments, checkers, and
//! schedules. These are the structures every algorithm's correctness
//! quietly depends on.

use proptest::prelude::*;
use radio_sim::geometry::{DiskOverlay, Point};
use radio_sim::{DualGraph, Graph, IdAssignment, LinkDetectorAssignment, SpuriousSource};
use radio_structures::checker::{check_ccds, check_mis};
use radio_structures::params::{ceil_log2, id_bits, CcdsParams};
use radio_structures::Schedule;
use rand::SeedableRng;

/// A connected random graph on `n` vertices: a random spanning tree plus
/// random extra edges.
fn connected_graph(n: usize, seed: u64, extra: usize) -> Graph {
    use rand::Rng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut g = Graph::new(n);
    for v in 1..n {
        let u = rng.gen_range(0..v);
        g.add_edge(u, v);
    }
    for _ in 0..extra {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            g.add_edge(u, v);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn graph_edges_are_symmetric_and_counted(n in 2usize..40, seed in 0u64..500, extra in 0usize..30) {
        let g = connected_graph(n, seed, extra);
        let mut count = 0usize;
        for u in 0..n {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u), "symmetry broken");
                if u < v { count += 1; }
            }
        }
        prop_assert_eq!(count, g.edge_count());
        prop_assert!(g.is_connected());
    }

    #[test]
    fn bfs_distances_satisfy_triangle_steps(n in 2usize..30, seed in 0u64..200) {
        let g = connected_graph(n, seed, n / 2);
        let d = g.bfs_distances(0);
        for (u, v) in g.edges() {
            let du = d[u].unwrap();
            let dv = d[v].unwrap();
            prop_assert!(du.abs_diff(dv) <= 1, "adjacent distances differ by > 1");
        }
    }

    #[test]
    fn dual_graph_invariants(n in 2usize..30, seed in 0u64..200, extra in 0usize..20) {
        let g = connected_graph(n, seed, 2);
        let mut gp = g.clone();
        // Add unreliable links on top.
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xabc);
        for _ in 0..extra {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v { gp.add_edge(u, v); }
        }
        let net = DualGraph::new(g.clone(), gp).unwrap();
        prop_assert!(net.g().is_subgraph_of(net.g_prime()));
        prop_assert_eq!(
            net.unreliable_edge_count(),
            net.g_prime().edge_count() - net.g().edge_count()
        );
        for (u, v) in net.unreliable_edges() {
            prop_assert!(!net.g().has_edge(u, v));
            prop_assert!(net.g_prime().has_edge(u, v));
        }
    }

    #[test]
    fn overlay_always_covers(x in -50.0f64..50.0, y in -50.0f64..50.0) {
        let overlay = DiskOverlay::paper();
        let p = Point::new(x, y);
        let c = overlay.cell_of(p);
        prop_assert!(overlay.center(c).dist(p) <= overlay.radius() + 1e-9);
    }

    #[test]
    fn id_assignment_roundtrips(n in 1usize..64, seed in 0u64..1000) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = IdAssignment::random(n, &mut rng);
        for v in 0..n {
            let node = radio_sim::NodeId(v);
            prop_assert_eq!(a.node_of(a.id_of(node)), node);
        }
    }

    #[test]
    fn tau_detectors_validate(n in 3usize..24, seed in 0u64..200, tau in 0usize..4) {
        let g = connected_graph(n, seed, 3);
        let mut gp = g.clone();
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x77);
        for _ in 0..n {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v { gp.add_edge(u, v); }
        }
        let net = DualGraph::new(g, gp).unwrap();
        let ids = IdAssignment::identity(n);
        let det = LinkDetectorAssignment::tau_complete(
            &net, &ids, tau, SpuriousSource::AnyNonNeighbor, &mut rng,
        );
        prop_assert!(det.is_tau_complete(&net, &ids, tau));
        // H always contains G.
        let h = det.h_graph(&ids);
        prop_assert!(net.g().is_subgraph_of(&h));
        // tau = 0 means H = G exactly.
        if tau == 0 {
            prop_assert_eq!(&h, net.g());
        }
    }

    #[test]
    fn checkers_accept_ground_truth_structures(n in 2usize..24, seed in 0u64..200) {
        // A greedily built MIS/CDS must satisfy the checkers — the checkers
        // and the constructions are implemented independently.
        let g = connected_graph(n, seed, n / 3);
        let net = DualGraph::classic(g.clone()).unwrap();
        let mis = radio_baselines::centralized::greedy_mis(&g);
        let mis_out: Vec<Option<bool>> = mis.iter().map(|&b| Some(b)).collect();
        prop_assert!(check_mis(&net, &g, &mis_out).is_valid());
        let cds = radio_baselines::centralized::greedy_cds(&g);
        let cds_out: Vec<Option<bool>> = cds.iter().map(|&b| Some(b)).collect();
        let report = check_ccds(&net, &g, &cds_out);
        prop_assert!(report.terminated && report.connected && report.dominating);
    }

    #[test]
    fn schedule_partitions_time(n in 4usize..128, delta in 1usize..40, b in 60u64..2048) {
        let params = CcdsParams::default();
        if let Ok(s) = Schedule::compute(n, delta, b, &params) {
            prop_assert_eq!(s.epoch_len, s.p1_len + s.p2_len + s.p3_len);
            prop_assert_eq!(s.total, s.mis_total + s.search_epochs * s.epoch_len);
            // Slot mapping is total: every round index lands somewhere.
            for r0 in [0, s.mis_total, s.total - 1, s.total, s.total + 7] {
                let _ = s.slot(r0);
            }
            // Chunk capacity respects b.
            let idb = id_bits(n);
            prop_assert!(
                radio_structures::HEADER_BITS + 4 * idb + s.chunk_capacity as u64 * idb <= b + idb
            );
        }
    }

    #[test]
    fn log_helpers_are_monotone(a in 1usize..100_000, bump in 1usize..1000) {
        prop_assert!(ceil_log2(a + bump) >= ceil_log2(a));
        prop_assert!(id_bits(a + bump) >= id_bits(a));
        prop_assert!(1u64 << ceil_log2(a) >= a as u64 / 2);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end property: the MIS algorithm run on arbitrary connected
    /// dual graphs (not just geometric ones) always produces a valid MIS.
    /// (The paper's proofs assume geometric embeddings, but the algorithm
    /// itself only needs the detector; empirically it is robust on general
    /// sparse graphs too.)
    #[test]
    fn mis_valid_on_arbitrary_sparse_graphs(n in 4usize..24, seed in 0u64..50) {
        let g = connected_graph(n, seed, 2);
        let net = DualGraph::classic(g).unwrap();
        let run = radio_structures::runner::run_mis(
            &net,
            radio_structures::params::MisParams::default(),
            radio_structures::runner::AdversaryKind::ReliableOnly,
            seed,
        );
        prop_assert!(run.report.is_valid(), "{:?}", run.report);
    }
}
