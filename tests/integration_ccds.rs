//! Integration tests for the Section 5 CCDS: correctness across
//! topologies/adversaries, the `Δ`/`b` running-time trade-off of
//! Theorem 5.3, message-bound compliance, and the banned-list efficiency
//! property.

use radio_sim::topology::{clustered, grid, random_geometric};
use radio_sim::topology::{ClusteredConfig, GridConfig, RandomGeometricConfig};
use radio_structures::runner::{run_ccds, AdversaryKind};
use radio_structures::CcdsConfig;
use rand::SeedableRng;

#[test]
fn ccds_on_random_geometric_all_adversaries() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(300);
    let net = random_geometric(&RandomGeometricConfig::dense(48), &mut rng).unwrap();
    let cfg = CcdsConfig::new(net.n(), net.max_degree_g(), 512);
    for kind in [
        AdversaryKind::ReliableOnly,
        AdversaryKind::Random { p: 0.5 },
        AdversaryKind::AllUnreliable,
    ] {
        let run = run_ccds(&net, &cfg, kind, 5).unwrap();
        assert!(
            run.report.terminated && run.report.connected && run.report.dominating,
            "CCDS failed under {:?}: {:?}",
            kind.name(),
            run.report
        );
        assert_eq!(run.metrics.oversize_messages, 0);
    }
}

#[test]
fn ccds_on_grid_and_clusters() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(301);
    let nets = vec![
        grid(&GridConfig::new(6, 6, 0.8), &mut rng).unwrap(),
        clustered(&ClusteredConfig::new(3, 10), &mut rng).unwrap(),
    ];
    for (i, net) in nets.into_iter().enumerate() {
        let cfg = CcdsConfig::new(net.n(), net.max_degree_g(), 512);
        let run = run_ccds(&net, &cfg, AdversaryKind::Random { p: 0.5 }, 400 + i as u64).unwrap();
        assert!(
            run.report.terminated && run.report.connected && run.report.dominating,
            "topology {i}: {:?}",
            run.report
        );
    }
}

#[test]
fn schedule_shrinks_as_b_grows() {
    // The Δ·log²n/b term of Theorem 5.3: growing b must shrink the
    // schedule until the log³n (MIS) term dominates, after which it is flat.
    let n = 64;
    let delta = 20;
    let mut last = u64::MAX;
    let mut totals = Vec::new();
    for b in [64u64, 128, 256, 512, 1024, 2048, 4096] {
        let total = CcdsConfig::new(n, delta, b).schedule().unwrap().total;
        assert!(
            total <= last,
            "schedule must be monotone non-increasing in b"
        );
        last = total;
        totals.push(total);
    }
    // Flat tail: once chunk_windows hits 1 the schedule stops changing.
    assert_eq!(totals[totals.len() - 1], totals[totals.len() - 2]);
    // Steep head: small b costs strictly more.
    assert!(totals[0] > totals[totals.len() - 1]);
}

#[test]
fn schedule_grows_linearly_in_delta_at_small_b() {
    let n = 64;
    let b = 64u64;
    let t10 = CcdsConfig::new(n, 10, b).schedule().unwrap();
    let t40 = CcdsConfig::new(n, 40, b).schedule().unwrap();
    // chunk windows scale with Δ at fixed b...
    assert!(t40.chunk_windows >= 3 * t10.chunk_windows);
    // ...and the search epochs inherit the linear growth.
    assert!(t40.epoch_len > 2 * t10.epoch_len);
}

#[test]
fn banned_list_keeps_explorations_constant() {
    // Sweep density upward; the max explorations per MIS node must not
    // scale with Δ (it is bounded by the number of search epochs, not by
    // the degree).
    let mut rng = rand::rngs::StdRng::seed_from_u64(302);
    for spacing in [0.9f64, 0.5] {
        let net = grid(&GridConfig::new(6, 6, spacing), &mut rng).unwrap();
        let cfg = CcdsConfig::new(net.n(), net.max_degree_g(), 1024);
        let run = run_ccds(&net, &cfg, AdversaryKind::Random { p: 0.5 }, 9).unwrap();
        assert!(run.report.terminated && run.report.connected && run.report.dominating);
        assert!(
            run.max_explorations <= u64::from(cfg.params.search_epochs),
            "explorations {} exceed the search-epoch bound",
            run.max_explorations
        );
    }
}

#[test]
fn ccds_respects_strict_message_bound() {
    // Run with the engine enforcing exactly the configured b: zero
    // oversize messages means the chunking honors Theorem 5.3's model.
    let mut rng = rand::rngs::StdRng::seed_from_u64(303);
    let net = random_geometric(&RandomGeometricConfig::dense(40), &mut rng).unwrap();
    for b in [64u64, 96, 512] {
        let cfg = CcdsConfig::new(net.n(), net.max_degree_g(), b);
        let run = run_ccds(&net, &cfg, AdversaryKind::Random { p: 0.5 }, 2).unwrap();
        assert_eq!(run.metrics.oversize_messages, 0, "oversize at b = {b}");
        assert!(run.report.terminated && run.report.connected && run.report.dominating);
    }
}

#[test]
fn ccds_structure_is_constant_bounded() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(304);
    let net = random_geometric(&RandomGeometricConfig::dense(64), &mut rng).unwrap();
    let cfg = CcdsConfig::new(net.n(), net.max_degree_g(), 512);
    let run = run_ccds(&net, &cfg, AdversaryKind::Random { p: 0.5 }, 3).unwrap();
    // The paper's constant is geometry-derived; empirically the per-node
    // G'-neighbor count in the CCDS must stay far below Δ'.
    assert!(
        run.report.max_gprime_neighbors_in_set <= net.max_degree_g_prime(),
        "constant-boundedness sanity"
    );
    assert!(run.report.max_gprime_neighbors_in_set as f64 <= 0.9 * net.n() as f64);
}
