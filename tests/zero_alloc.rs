//! Steady-state zero-allocation test for `Engine::step()`,
//! `Engine::step_bitset()`, `Engine::step_batched()`, and
//! `BatchedEngine::step()`.
//!
//! This file holds exactly one test so the counting global allocator sees
//! no concurrent allocations from sibling tests. After a warmup that
//! high-water-marks every scratch buffer (and, for the bitset/batched
//! tiers, built the cached bitmask rows and trial stripes), stepping the
//! engine must not touch the heap at all — on any canonical workload, in
//! any zero-alloc tier, solo or batch.

use radio_bench::enginebench::{workload_batched_engine, workload_engine_mode, WORKLOADS};
use radio_sim::StepMode;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates to `System`, adding only a relaxed counter bump.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn step_is_allocation_free_in_steady_state() {
    for mode in [StepMode::Scalar, StepMode::Bitset, StepMode::Batched] {
        for name in WORKLOADS {
            // The pinned mode routes `run_rounds` through the tier under
            // test; Bitset/Batched spawns also pre-build the bitmask rows,
            // and the warmup would cover a lazy build anyway.
            let mut engine = workload_engine_mode(name, mode);
            engine.run_rounds(128); // grow every scratch buffer to its high-water mark
            let before = ALLOCS.load(Ordering::Relaxed);
            engine.run_rounds(512);
            let after = ALLOCS.load(Ordering::Relaxed);
            assert_eq!(
                after - before,
                0,
                "{name}: the {mode:?} tier allocated in steady state"
            );
        }
    }
    // The multi-trial batch engine: B trial stripes, one shared row pass.
    // All stripe/mask/count buffers are sized at construction, so steady
    // state must stay off the heap exactly like the solo tiers.
    for name in WORKLOADS {
        let mut batched = workload_batched_engine(name);
        batched.run_rounds_each(128);
        let before = ALLOCS.load(Ordering::Relaxed);
        batched.run_rounds_each(512);
        let after = ALLOCS.load(Ordering::Relaxed);
        assert_eq!(
            after - before,
            0,
            "{name}: the batched engine allocated in steady state"
        );
    }
}
