//! Golden tests of the streaming execution pipeline (PR 4) and its
//! resumable/sharded extension (PR 5): a chunked sweep through
//! [`radio_bench::sink::StreamAggregate`] must reproduce the
//! materialized [`radio_bench::scenario::run_spec`] +
//! `RenderKind::Aggregate` table **byte for byte** at every chunk size;
//! the JSONL record log must round-trip losslessly; a sweep interrupted
//! at **any** chunk boundary and resumed from its serialized snapshot,
//! and a sweep split into shards then merged in shard order, must both
//! be byte-identical to the uninterrupted run. Any drift in the chunked
//! planner (`unit_at`), the sink ordering, the aggregation fold, or the
//! snapshot round-trip fails here first.

use radio_bench::aggregate::{
    AggregateSnapshot, AggregateSpec, GroupKey, MetricSource, MetricSpec, Normalizer, Reduction,
    SlopeAxis, SlopeSpec,
};
use radio_bench::checkpoint::{merge_partials, shard_range, spec_fingerprint, ShardRef};
use radio_bench::scenario::{
    render, run_spec, run_spec_streaming, run_spec_streaming_range, NestOrder, RenderKind,
    ScenarioSpec, SeedPolicy, StopCondition, TopologyEntry, Workload, WorkloadEntry,
};
use radio_bench::sink::{JsonlWriter, Materialize, RecordSink, StreamAggregate};
use radio_sim::spec::{AdversaryKind, TopologyKind};
use radio_structures::runner::{AlgoKind, RunRecord};

/// An E1-style scaling sweep: several sizes × two adversaries × MIS
/// trials, grouped by n with CI/median/normalizer/slope — every formatting
/// path of the aggregate renderer in one table.
fn e1_style_spec() -> ScenarioSpec {
    ScenarioSpec {
        id: "STREAM-E1".to_string(),
        caption: "streaming golden: MIS solve rounds vs n".to_string(),
        render: RenderKind::Aggregate,
        topologies: vec![
            TopologyEntry::new(TopologyKind::GeometricDense { n: 16 }),
            TopologyEntry::new(TopologyKind::GeometricDense { n: 24 }),
            TopologyEntry::new(TopologyKind::GeometricDense { n: 32 }),
        ],
        adversaries: vec![
            AdversaryKind::ReliableOnly,
            AdversaryKind::Random { p: 0.5 },
        ],
        workloads: vec![WorkloadEntry::core(AlgoKind::Mis)],
        trials: 3,
        nest: NestOrder::TopologyMajor,
        seeds: SeedPolicy {
            net_base: 400,
            run_base: 21,
        },
        stop: StopCondition::Default,
        aggregate: Some(AggregateSpec {
            group_by: vec![GroupKey::N, GroupKey::Adversary],
            metrics: vec![
                MetricSpec::new(MetricSource::SolveRound, vec![Reduction::Count]),
                MetricSpec::new(MetricSource::Valid, vec![Reduction::Frac]),
                MetricSpec::new(
                    MetricSource::SolveRound,
                    vec![
                        Reduction::Ci95,
                        Reduction::Median,
                        Reduction::Min,
                        Reduction::Max,
                    ],
                ),
                MetricSpec {
                    source: MetricSource::SolveRound,
                    reductions: vec![Reduction::Mean],
                    per: Some(Normalizer::Log3N),
                    label: None,
                    include_invalid: None,
                },
            ],
            slope: Some(SlopeSpec {
                x: SlopeAxis::Log2N,
                metric: 3,
                caption: " [p = {p}]".to_string(),
            }),
        }),
    }
}

/// A spec whose units yield several records each (the two-clique sweep),
/// so the JSONL log and chunked runner cover the multi-record path too.
fn multi_record_spec() -> ScenarioSpec {
    ScenarioSpec {
        id: "STREAM-5B".to_string(),
        caption: "streaming golden: two-clique sweep".to_string(),
        render: RenderKind::Generic,
        topologies: vec![TopologyEntry::new(TopologyKind::Clique { n: 1 })],
        adversaries: vec![AdversaryKind::CliqueIsolator],
        workloads: vec![WorkloadEntry::new(Workload::TwoCliqueSweep {
            betas: vec![4, 6],
            trials: 1,
        })],
        trials: 2,
        nest: NestOrder::TopologyMajor,
        seeds: SeedPolicy {
            net_base: 0,
            run_base: 99,
        },
        stop: StopCondition::Default,
        aggregate: None,
    }
}

#[test]
fn stream_aggregate_reproduces_materialized_table_at_every_chunk_size() {
    let spec = e1_style_spec();
    let run = run_spec(&spec);
    let materialized = render(&spec, &run);
    // The grid is 18 units; chunk sizes straddle 1, divisors,
    // non-divisors, the exact grid, and far beyond it.
    for chunk in [1u64, 2, 3, 5, 7, 18, 64] {
        let mut agg = StreamAggregate::for_spec(&spec);
        let stats = run_spec_streaming(&spec, chunk, &mut [&mut agg]).expect("no I/O sink");
        assert_eq!(stats.units, spec.grid_size() as u64, "chunk = {chunk}");
        let streamed = agg.table(&spec);
        assert_eq!(
            streamed.render(),
            materialized.render(),
            "streamed table drifted from the materialized fold at chunk = {chunk}"
        );
        assert_eq!(
            streamed.to_csv(),
            materialized.to_csv(),
            "CSV drifted at chunk = {chunk}"
        );
    }
}

#[test]
fn materialize_sink_is_the_identity_reference() {
    for spec in [e1_style_spec(), multi_record_spec()] {
        let reference = run_spec(&spec);
        for chunk in [1u64, 4, 1000] {
            let mut sink = Materialize::new();
            run_spec_streaming(&spec, chunk, &mut [&mut sink]).expect("no I/O sink");
            let run = sink.into_run(reference.wall_s);
            assert_eq!(run, reference, "{} at chunk = {chunk}", spec.id);
        }
    }
}

#[test]
fn jsonl_log_roundtrips_into_the_same_records() {
    for spec in [e1_style_spec(), multi_record_spec()] {
        let reference: Vec<RunRecord> = run_spec(&spec).records.into_iter().flatten().collect();
        let mut log = JsonlWriter::new(Vec::new());
        let stats = run_spec_streaming(&spec, 3, &mut [&mut log]).expect("Vec sink cannot fail");
        assert_eq!(stats.records, reference.len() as u64, "{}", spec.id);
        let bytes = log.finish().expect("flushing a Vec cannot fail");
        let text = String::from_utf8(bytes).expect("JSONL is UTF-8");
        assert_eq!(text.lines().count(), reference.len(), "{}", spec.id);
        let parsed: Vec<RunRecord> = text
            .lines()
            .map(|line| RunRecord::from_jsonl(line).expect("every line parses alone"))
            .collect();
        assert_eq!(parsed, reference, "{}: JSONL round-trip drifted", spec.id);
    }
}

#[test]
fn tee_of_aggregate_and_jsonl_shares_one_execution() {
    let spec = e1_style_spec();
    let materialized = render(&spec, &run_spec(&spec));
    let mut agg = StreamAggregate::for_spec(&spec);
    let mut log = JsonlWriter::new(Vec::new());
    {
        let mut sinks: Vec<&mut dyn RecordSink> = vec![&mut agg, &mut log];
        run_spec_streaming(&spec, 5, &mut sinks).expect("no I/O sink");
    }
    assert_eq!(agg.table(&spec).render(), materialized.render());
    assert_eq!(log.lines(), spec.grid_size() as u64);
}

#[test]
fn range_slices_concatenate_to_the_full_sweep() {
    // Consecutive range slices must reproduce the whole sweep exactly —
    // the primitive resume and sharding stand on.
    let spec = e1_style_spec();
    let total = spec.grid_size() as u64;
    let mut reference = Materialize::new();
    run_spec_streaming(&spec, 4, &mut [&mut reference]).expect("no I/O");
    for cuts in [vec![0, total], vec![0, 1, total], vec![0, 5, 6, 13, total]] {
        let mut sliced = Materialize::new();
        for pair in cuts.windows(2) {
            run_spec_streaming_range(&spec, 4, pair[0]..pair[1], &mut [&mut sliced])
                .expect("no I/O");
        }
        assert_eq!(
            sliced.clone().into_run(0.0).records,
            reference.clone().into_run(0.0).records,
            "cuts {cuts:?}"
        );
    }
}

/// Simulates a kill at one chunk boundary: stream the prefix, serialize
/// the aggregate snapshot and JSONL bytes to "disk" (a JSON string — the
/// same round-trip a checkpoint file takes), drop everything, restore,
/// and stream the rest.
fn interrupt_and_resume(
    spec: &ScenarioSpec,
    chunk: u64,
    boundary: u64,
) -> (String, String, Vec<u8>) {
    let total = spec.grid_size() as u64;
    // Phase 1: run [0, boundary), checkpoint, forget.
    let mut agg = StreamAggregate::for_spec(spec);
    let mut log = JsonlWriter::new(Vec::new());
    run_spec_streaming_range(spec, chunk, 0..boundary, &mut [&mut agg, &mut log]).expect("no I/O");
    let snapshot_json = serde_json::to_string(&agg.snapshot()).expect("snapshot serializes");
    let durable_jsonl = log.finish().expect("Vec flush");
    drop(agg);
    // Phase 2: restore from the serialized state and run [boundary, end).
    let snap: AggregateSnapshot = serde_json::from_str(&snapshot_json).expect("snapshot parses");
    let mut agg = StreamAggregate::restore_for_spec(spec, snap).expect("shape matches");
    let mut log = JsonlWriter::resume(durable_jsonl, 0);
    run_spec_streaming_range(spec, chunk, boundary..total, &mut [&mut agg, &mut log])
        .expect("no I/O");
    let table = agg.table(spec);
    (table.render(), table.to_csv(), log.finish().expect("flush"))
}

#[test]
fn resume_at_every_chunk_boundary_is_byte_identical() {
    let spec = e1_style_spec();
    let total = spec.grid_size() as u64;
    // Uninterrupted reference: table, CSV, and JSONL bytes.
    let mut agg = StreamAggregate::for_spec(&spec);
    let mut log = JsonlWriter::new(Vec::new());
    run_spec_streaming(&spec, 5, &mut [&mut agg, &mut log]).expect("no I/O");
    let (ref_table, ref_csv) = (agg.table(&spec).render(), agg.table(&spec).to_csv());
    let ref_jsonl = log.finish().expect("flush");
    // Kill at every chunk boundary, for chunk sizes including
    // non-divisors of the 18-unit grid.
    for chunk in [1u64, 2, 5, 7, 18] {
        let mut boundary = 0u64;
        while boundary <= total {
            let (table, csv, jsonl) = interrupt_and_resume(&spec, chunk, boundary);
            assert_eq!(table, ref_table, "chunk {chunk}, boundary {boundary}");
            assert_eq!(csv, ref_csv, "chunk {chunk}, boundary {boundary}");
            assert_eq!(jsonl, ref_jsonl, "chunk {chunk}, boundary {boundary}");
            boundary = total.min(boundary + chunk);
            if boundary == total {
                let (table, _, _) = interrupt_and_resume(&spec, chunk, boundary);
                assert_eq!(table, ref_table, "chunk {chunk}, boundary {boundary}");
                break;
            }
        }
    }
}

#[test]
fn shard_merge_is_byte_identical_for_both_nestings_and_many_shard_counts() {
    for nest in [NestOrder::TopologyMajor, NestOrder::WorkloadMajor] {
        let mut spec = e1_style_spec();
        spec.nest = nest;
        let total = spec.grid_size() as u64;
        let mut agg = StreamAggregate::for_spec(&spec);
        let mut log = JsonlWriter::new(Vec::new());
        run_spec_streaming(&spec, 4, &mut [&mut agg, &mut log]).expect("no I/O");
        let ref_table = agg.table(&spec).render();
        let ref_jsonl = log.finish().expect("flush");
        for count in [1u64, 2, 3, 5, 7, total] {
            // Run each shard independently, then fold partials in order.
            let mut partials = Vec::new();
            let mut shard_jsonl = Vec::new();
            for index in 0..count {
                let range = shard_range(total, ShardRef { index, count });
                let mut agg = StreamAggregate::for_spec(&spec);
                let mut log = JsonlWriter::new(Vec::new());
                run_spec_streaming_range(&spec, 4, range.clone(), &mut [&mut agg, &mut log])
                    .expect("no I/O");
                partials.push(radio_bench::checkpoint::ShardPartial {
                    schema: radio_bench::checkpoint::PARTIAL_SCHEMA.to_string(),
                    fingerprint: spec_fingerprint(&spec),
                    shard: ShardRef { index, count },
                    start: range.start,
                    end: range.end,
                    records: log.lines(),
                    wall_s: 0.0,
                    records_path: None,
                    spec: spec.clone(),
                    aggregate: agg.snapshot(),
                });
                shard_jsonl.extend(log.finish().expect("flush"));
            }
            let merged = merge_partials(partials).expect("consistent partials");
            assert_eq!(
                merged.agg.table(&merged.spec).render(),
                ref_table,
                "{nest:?}, {count} shards"
            );
            assert_eq!(shard_jsonl, ref_jsonl, "{nest:?}, {count} shards");
        }
    }
}

#[test]
fn unit_at_decodes_the_nested_loop_expansion_both_nestings() {
    // `plan()` is defined through `unit_at`, so comparing the two would be
    // tautological. The reference here is the *original nested loops* the
    // mixed-radix decode replaced — reproduced independently.
    for nest in [NestOrder::TopologyMajor, NestOrder::WorkloadMajor] {
        let mut spec = e1_style_spec();
        spec.nest = nest;
        let mut reference = Vec::new();
        let mut push_cell = |ti: usize, ai: usize, wi: usize| {
            let work = &spec.workloads[wi];
            let net_base = work
                .net_seed
                .or(spec.topologies[ti].seed)
                .unwrap_or(spec.seeds.net_base);
            let run_base = work.run_seed.unwrap_or(spec.seeds.run_base);
            for trial in 0..spec.trials {
                reference.push((ti, ai, wi, trial, net_base + trial, run_base + trial));
            }
        };
        match nest {
            NestOrder::TopologyMajor => {
                for ti in 0..spec.topologies.len() {
                    for ai in 0..spec.adversaries.len() {
                        for wi in 0..spec.workloads.len() {
                            push_cell(ti, ai, wi);
                        }
                    }
                }
            }
            NestOrder::WorkloadMajor => {
                for wi in 0..spec.workloads.len() {
                    for ai in 0..spec.adversaries.len() {
                        for ti in 0..spec.topologies.len() {
                            push_cell(ti, ai, wi);
                        }
                    }
                }
            }
        }
        assert_eq!(reference.len(), spec.grid_size(), "{nest:?}");
        for (i, &(ti, ai, wi, trial, net_seed, run_seed)) in reference.iter().enumerate() {
            let unit = spec.unit_at(i as u64);
            assert_eq!(
                (
                    unit.topo,
                    unit.adv,
                    unit.work,
                    unit.trial,
                    unit.net_seed,
                    unit.run_seed
                ),
                (ti, ai, wi, trial, net_seed, run_seed),
                "index {i}, {nest:?}"
            );
        }
    }
}
