//! Golden tests of the streaming execution pipeline (PR 4): a chunked
//! sweep through [`radio_bench::sink::StreamAggregate`] must reproduce
//! the materialized [`radio_bench::scenario::run_spec`] +
//! `RenderKind::Aggregate` table **byte for byte** at every chunk size,
//! and the JSONL record log must round-trip losslessly. Any drift in the
//! chunked planner (`unit_at`), the sink ordering, or the aggregation
//! fold fails here first.

use radio_bench::aggregate::{
    AggregateSpec, GroupKey, MetricSource, MetricSpec, Normalizer, Reduction, SlopeAxis, SlopeSpec,
};
use radio_bench::scenario::{
    render, run_spec, run_spec_streaming, NestOrder, RenderKind, ScenarioSpec, SeedPolicy,
    StopCondition, TopologyEntry, Workload, WorkloadEntry,
};
use radio_bench::sink::{JsonlWriter, Materialize, RecordSink, StreamAggregate};
use radio_sim::spec::{AdversaryKind, TopologyKind};
use radio_structures::runner::{AlgoKind, RunRecord};

/// An E1-style scaling sweep: several sizes × two adversaries × MIS
/// trials, grouped by n with CI/median/normalizer/slope — every formatting
/// path of the aggregate renderer in one table.
fn e1_style_spec() -> ScenarioSpec {
    ScenarioSpec {
        id: "STREAM-E1".to_string(),
        caption: "streaming golden: MIS solve rounds vs n".to_string(),
        render: RenderKind::Aggregate,
        topologies: vec![
            TopologyEntry::new(TopologyKind::GeometricDense { n: 16 }),
            TopologyEntry::new(TopologyKind::GeometricDense { n: 24 }),
            TopologyEntry::new(TopologyKind::GeometricDense { n: 32 }),
        ],
        adversaries: vec![
            AdversaryKind::ReliableOnly,
            AdversaryKind::Random { p: 0.5 },
        ],
        workloads: vec![WorkloadEntry::core(AlgoKind::Mis)],
        trials: 3,
        nest: NestOrder::TopologyMajor,
        seeds: SeedPolicy {
            net_base: 400,
            run_base: 21,
        },
        stop: StopCondition::Default,
        aggregate: Some(AggregateSpec {
            group_by: vec![GroupKey::N, GroupKey::Adversary],
            metrics: vec![
                MetricSpec::new(MetricSource::SolveRound, vec![Reduction::Count]),
                MetricSpec::new(MetricSource::Valid, vec![Reduction::Frac]),
                MetricSpec::new(
                    MetricSource::SolveRound,
                    vec![
                        Reduction::Ci95,
                        Reduction::Median,
                        Reduction::Min,
                        Reduction::Max,
                    ],
                ),
                MetricSpec {
                    source: MetricSource::SolveRound,
                    reductions: vec![Reduction::Mean],
                    per: Some(Normalizer::Log3N),
                    label: None,
                    include_invalid: None,
                },
            ],
            slope: Some(SlopeSpec {
                x: SlopeAxis::Log2N,
                metric: 3,
                caption: " [p = {p}]".to_string(),
            }),
        }),
    }
}

/// A spec whose units yield several records each (the two-clique sweep),
/// so the JSONL log and chunked runner cover the multi-record path too.
fn multi_record_spec() -> ScenarioSpec {
    ScenarioSpec {
        id: "STREAM-5B".to_string(),
        caption: "streaming golden: two-clique sweep".to_string(),
        render: RenderKind::Generic,
        topologies: vec![TopologyEntry::new(TopologyKind::Clique { n: 1 })],
        adversaries: vec![AdversaryKind::CliqueIsolator],
        workloads: vec![WorkloadEntry::new(Workload::TwoCliqueSweep {
            betas: vec![4, 6],
            trials: 1,
        })],
        trials: 2,
        nest: NestOrder::TopologyMajor,
        seeds: SeedPolicy {
            net_base: 0,
            run_base: 99,
        },
        stop: StopCondition::Default,
        aggregate: None,
    }
}

#[test]
fn stream_aggregate_reproduces_materialized_table_at_every_chunk_size() {
    let spec = e1_style_spec();
    let run = run_spec(&spec);
    let materialized = render(&spec, &run);
    // The grid is 18 units; chunk sizes straddle 1, divisors,
    // non-divisors, the exact grid, and far beyond it.
    for chunk in [1u64, 2, 3, 5, 7, 18, 64] {
        let mut agg = StreamAggregate::for_spec(&spec);
        let stats = run_spec_streaming(&spec, chunk, &mut [&mut agg]).expect("no I/O sink");
        assert_eq!(stats.units, spec.grid_size() as u64, "chunk = {chunk}");
        let streamed = agg.table(&spec);
        assert_eq!(
            streamed.render(),
            materialized.render(),
            "streamed table drifted from the materialized fold at chunk = {chunk}"
        );
        assert_eq!(
            streamed.to_csv(),
            materialized.to_csv(),
            "CSV drifted at chunk = {chunk}"
        );
    }
}

#[test]
fn materialize_sink_is_the_identity_reference() {
    for spec in [e1_style_spec(), multi_record_spec()] {
        let reference = run_spec(&spec);
        for chunk in [1u64, 4, 1000] {
            let mut sink = Materialize::new();
            run_spec_streaming(&spec, chunk, &mut [&mut sink]).expect("no I/O sink");
            let run = sink.into_run(reference.wall_s);
            assert_eq!(run, reference, "{} at chunk = {chunk}", spec.id);
        }
    }
}

#[test]
fn jsonl_log_roundtrips_into_the_same_records() {
    for spec in [e1_style_spec(), multi_record_spec()] {
        let reference: Vec<RunRecord> = run_spec(&spec).records.into_iter().flatten().collect();
        let mut log = JsonlWriter::new(Vec::new());
        let stats = run_spec_streaming(&spec, 3, &mut [&mut log]).expect("Vec sink cannot fail");
        assert_eq!(stats.records, reference.len() as u64, "{}", spec.id);
        let bytes = log.finish().expect("flushing a Vec cannot fail");
        let text = String::from_utf8(bytes).expect("JSONL is UTF-8");
        assert_eq!(text.lines().count(), reference.len(), "{}", spec.id);
        let parsed: Vec<RunRecord> = text
            .lines()
            .map(|line| RunRecord::from_jsonl(line).expect("every line parses alone"))
            .collect();
        assert_eq!(parsed, reference, "{}: JSONL round-trip drifted", spec.id);
    }
}

#[test]
fn tee_of_aggregate_and_jsonl_shares_one_execution() {
    let spec = e1_style_spec();
    let materialized = render(&spec, &run_spec(&spec));
    let mut agg = StreamAggregate::for_spec(&spec);
    let mut log = JsonlWriter::new(Vec::new());
    {
        let mut sinks: Vec<&mut dyn RecordSink> = vec![&mut agg, &mut log];
        run_spec_streaming(&spec, 5, &mut sinks).expect("no I/O sink");
    }
    assert_eq!(agg.table(&spec).render(), materialized.render());
    assert_eq!(log.lines(), spec.grid_size() as u64);
}

#[test]
fn unit_at_decodes_the_nested_loop_expansion_both_nestings() {
    // `plan()` is defined through `unit_at`, so comparing the two would be
    // tautological. The reference here is the *original nested loops* the
    // mixed-radix decode replaced — reproduced independently.
    for nest in [NestOrder::TopologyMajor, NestOrder::WorkloadMajor] {
        let mut spec = e1_style_spec();
        spec.nest = nest;
        let mut reference = Vec::new();
        let mut push_cell = |ti: usize, ai: usize, wi: usize| {
            let work = &spec.workloads[wi];
            let net_base = work
                .net_seed
                .or(spec.topologies[ti].seed)
                .unwrap_or(spec.seeds.net_base);
            let run_base = work.run_seed.unwrap_or(spec.seeds.run_base);
            for trial in 0..spec.trials {
                reference.push((ti, ai, wi, trial, net_base + trial, run_base + trial));
            }
        };
        match nest {
            NestOrder::TopologyMajor => {
                for ti in 0..spec.topologies.len() {
                    for ai in 0..spec.adversaries.len() {
                        for wi in 0..spec.workloads.len() {
                            push_cell(ti, ai, wi);
                        }
                    }
                }
            }
            NestOrder::WorkloadMajor => {
                for wi in 0..spec.workloads.len() {
                    for ai in 0..spec.adversaries.len() {
                        for ti in 0..spec.topologies.len() {
                            push_cell(ti, ai, wi);
                        }
                    }
                }
            }
        }
        assert_eq!(reference.len(), spec.grid_size(), "{nest:?}");
        for (i, &(ti, ai, wi, trial, net_seed, run_seed)) in reference.iter().enumerate() {
            let unit = spec.unit_at(i as u64);
            assert_eq!(
                (
                    unit.topo,
                    unit.adv,
                    unit.work,
                    unit.trial,
                    unit.net_seed,
                    unit.run_seed
                ),
                (ti, ai, wi, trial, net_seed, run_seed),
                "index {i}, {nest:?}"
            );
        }
    }
}
