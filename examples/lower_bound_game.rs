//! The Ω(Δ) lower bound (Section 7), demonstrated end to end.
//!
//! 1. The β-single hitting game needs ≈ (β+1)/2 rounds in expectation.
//! 2. Any CCDS algorithm on the two-clique network can be recast as two
//!    hitting-game players (Lemma 7.2) — we do exactly that with the
//!    Section 6 algorithm and watch the game get solved.
//! 3. On the *real* simulator, the Section 6 algorithm under the
//!    clique-isolating adversary takes time growing with Δ = β.
//!
//! ```text
//! cargo run -p radio-bench --example lower_bound_game --release
//! ```

use hitting_games::{
    expected_rounds_floor, mean_hitting_time, play_double, run_two_clique, CliquePlayer,
    CliqueRole, UniformNoReplacement,
};
use radio_structures::{TauCcds, TauConfig};

fn main() {
    // (1) The single hitting game floor.
    println!("single hitting game (optimal strategy vs floor):");
    for beta in [16u32, 64, 256] {
        let mean = mean_hitting_time(beta, 300, 1, |s| {
            Box::new(UniformNoReplacement::new(beta, s))
        });
        println!(
            "  beta = {beta:>4}: mean = {mean:>7.1} rounds, floor (beta+1)/2 = {:>6.1}",
            expected_rounds_floor(beta)
        );
    }

    // (2) Lemma 7.2: our τ = 1 CCDS algorithm, simulated as two game players.
    let beta = 6u32;
    let (t_a, t_b) = (3u32, 5u32);
    let cfg = TauConfig::new(2 * beta as usize, beta as usize, 1);
    let make = |role, other, seed| -> CliquePlayer<TauCcds> {
        CliquePlayer::new(role, beta, other, seed, move |pid, _det, _n| {
            TauCcds::new(&cfg, pid)
        })
    };
    let mut pa = make(CliqueRole::A, t_b, 11);
    let mut pb = make(CliqueRole::B, t_a, 12);
    let out = play_double(beta, t_a, t_b, &mut pa, &mut pb, cfg.schedule().total + 64);
    println!(
        "\nLemma 7.2 reduction: targets ({t_a}, {t_b}) solved at round {:?} by player {}",
        out.solved_at,
        if out.solved_by_a { "A" } else { "B" }
    );
    assert!(out.solved_at.is_some());

    // (3) The real network: rounds grow with Δ = β.
    println!("\ntwo-clique network under the clique-isolating adversary:");
    for beta in [4usize, 8, 12] {
        let run = run_two_clique(beta, 0, 1, 21);
        println!(
            "  Δ = {beta:>2}: solved at {:?} (schedule {}), bridge joined at {:?}, valid CCDS = {}",
            run.solve_round,
            run.schedule_total,
            run.bridge_round,
            run.report.terminated && run.report.connected && run.report.dominating
        );
    }
    println!("\nlower_bound_game OK");
}
