//! Localized repair (§8/§10 future work prototype): keep the MIS, re-run
//! only the search stage in short cycles.
//!
//! Compares the recovery granularity of the continuous CCDS (full re-run,
//! `O(log³n)` MIS prefix every cycle) against the repair loop (search-only
//! cycles) on the same network.
//!
//! ```text
//! cargo run -p radio-bench --example localized_repair --release
//! ```

use radio_sim::{DualGraph, EngineBuilder, Graph};
use radio_structures::checker::check_ccds;
use radio_structures::{CcdsConfig, ContinuousCcds, RepairingCcds};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 12usize;
    let g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)))?;
    let net = DualGraph::classic(g)?;
    let cfg = CcdsConfig::new(n, net.max_degree_g(), 256);

    let continuous = ContinuousCcds::new(&cfg, radio_sim::ProcessId::new(1).expect("nonzero"))?;
    let repairing = RepairingCcds::new(&cfg, radio_sim::ProcessId::new(1).expect("nonzero"))?;
    println!(
        "cycle lengths: continuous = {} rounds/update, repair = {} rounds/update ({}x faster updates)",
        continuous.cycle_len(),
        repairing.repair_len(),
        continuous.cycle_len() / repairing.repair_len().max(1),
    );

    // Run the repair loop and verify each published structure.
    let mut engine = EngineBuilder::new(net)
        .seed(9)
        .spawn(|info| RepairingCcds::new(&cfg, info.id).expect("validated config"))?;
    let boot = engine.procs()[0].bootstrap_len();
    let repair = engine.procs()[0].repair_len();
    engine.run_rounds(boot + 1);
    for cycle in 0..3u64 {
        let report = check_ccds(engine.net(), engine.net().g(), &engine.outputs());
        println!(
            "after {} repair cycles: connected = {}, dominating = {}, size = {}",
            cycle, report.connected, report.dominating, report.ccds_size
        );
        assert!(report.terminated && report.connected && report.dominating);
        engine.run_rounds(repair);
    }
    println!("localized_repair OK");
    Ok(())
}
