//! Sensor-network backbone: the paper's motivating use case.
//!
//! A clustered sensor deployment (rooms joined by corridors) builds a CCDS
//! backbone, then routes data over it: any node is at most one hop from the
//! backbone, so source → backbone → … → backbone → sink works with paths
//! only constant-factor longer than shortest, while only backbone nodes
//! stay awake to forward.
//!
//! ```text
//! cargo run -p radio-bench --example sensor_backbone --release
//! ```

use radio_sim::topology::{clustered, ClusteredConfig};
use radio_sim::Graph;
use radio_structures::runner::{run_ccds, AdversaryKind};
use radio_structures::CcdsConfig;
use rand::SeedableRng;

/// Shortest path length where interior hops must be CCDS members.
fn backbone_distance(g: &Graph, ccds: &[bool], src: usize, dst: usize) -> Option<u32> {
    let mut dist = vec![None; g.n()];
    dist[src] = Some(0u32);
    let mut queue = std::collections::VecDeque::from([src]);
    while let Some(u) = queue.pop_front() {
        let du = dist[u].expect("queued implies distance");
        for &v in g.neighbors(u) {
            // Interior nodes must be on the backbone; the sink is exempt.
            if v != dst && !ccds[v] {
                continue;
            }
            if dist[v].is_none() {
                dist[v] = Some(du + 1);
                queue.push_back(v);
            }
        }
    }
    dist[dst]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let net = clustered(&ClusteredConfig::new(4, 14), &mut rng)?;
    println!(
        "deployment: n = {} in 4 clusters (+corridor relays), Δ = {}",
        net.n(),
        net.max_degree_g()
    );

    let cfg = CcdsConfig::new(net.n(), net.max_degree_g(), 1024);
    let run = run_ccds(&net, &cfg, AdversaryKind::Random { p: 0.5 }, 3)?;
    assert!(
        run.report.terminated && run.report.connected && run.report.dominating,
        "backbone construction failed verification"
    );
    let ccds: Vec<bool> = run.outputs.iter().map(|o| *o == Some(true)).collect();
    println!(
        "backbone: {} of {} nodes ({}%)",
        run.report.ccds_size,
        net.n(),
        100 * run.report.ccds_size / net.n()
    );

    // Route between the farthest pair of nodes, over the backbone.
    let g = net.g();
    let (mut src, mut dst, mut best) = (0, 0, 0);
    for v in 0..net.n() {
        let d = g.bfs_distances(v);
        for (u, du) in d.iter().enumerate() {
            if let Some(x) = *du {
                if x > best {
                    best = x;
                    src = v;
                    dst = u;
                }
            }
        }
    }
    let direct = g.hop_distance(src, dst).expect("connected");
    let via = backbone_distance(g, &ccds, src, dst).expect("backbone routes everyone");
    println!("routing v{src} → v{dst}: shortest = {direct} hops, via backbone = {via} hops");
    assert!(via <= 4 * direct + 4, "backbone stretch should be constant");
    println!("sensor_backbone OK");
    Ok(())
}
