//! Quickstart: build a random geometric dual graph, run the Section 5 CCDS
//! algorithm with a 0-complete link detector, and verify the structure.
//!
//! ```text
//! cargo run -p radio-bench --example quickstart --release
//! ```

use radio_sim::topology::{random_geometric, RandomGeometricConfig};
use radio_sim::{IdAssignment, LinkDetectorAssignment};
use radio_structures::checker::check_ccds;
use radio_structures::runner::{run_ccds, AdversaryKind};
use radio_structures::CcdsConfig;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 64-node deployment: reliable links below distance 1, unreliable
    //    "gray zone" links up to distance 2 (half of the candidates).
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let net = random_geometric(&RandomGeometricConfig::dense(64), &mut rng)?;
    println!(
        "network: n = {}, reliable edges = {}, unreliable edges = {}, Δ = {}",
        net.n(),
        net.g().edge_count(),
        net.unreliable_edge_count(),
        net.max_degree_g()
    );

    // 2. Run the CCDS algorithm. Every process knows n, a bound on Δ, and
    //    the message bound b; each gets a 0-complete link detector. The
    //    adversary activates each unreliable link with probability 1/2
    //    every round.
    let cfg = CcdsConfig::new(net.n(), net.max_degree_g(), 512);
    let run = run_ccds(&net, &cfg, AdversaryKind::Random { p: 0.5 }, 7)?;
    println!(
        "CCDS built in {} rounds (schedule budget {}), {} members, {} MIS nodes",
        run.solve_round.unwrap_or(run.rounds_executed),
        run.schedule_total,
        run.report.ccds_size,
        run.mis_size,
    );

    // 3. Verify the Section 3 conditions against H (= G for τ = 0).
    let ids = IdAssignment::identity(net.n());
    let det = LinkDetectorAssignment::zero_complete(&net, &ids);
    let h = det.h_graph(&ids);
    let report = check_ccds(&net, &h, &run.outputs);
    println!(
        "verified: terminated = {}, connected = {}, dominating = {}, max CCDS G'-neighbors = {}",
        report.terminated, report.connected, report.dominating, report.max_gprime_neighbors_in_set
    );
    assert!(report.terminated && report.connected && report.dominating);
    println!("quickstart OK");
    Ok(())
}
