//! Dynamic link detectors (Section 8): links degrade, the detector
//! re-stabilizes, and the continuous CCDS recovers within two cycles.
//!
//! ```text
//! cargo run -p radio-bench --example dynamic_links --release
//! ```

use radio_sim::{
    DualGraph, DynamicDetector, EngineBuilder, Graph, IdAssignment, LinkDetectorAssignment, NodeId,
};
use radio_structures::checker::check_ccds;
use radio_structures::{CcdsConfig, ContinuousCcds};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 10usize;
    let g = Graph::from_edges(n, (0..n - 1).map(|i| (i, i + 1)))?;
    let net = DualGraph::classic(g)?;
    let ids = IdAssignment::identity(n);
    let good = LinkDetectorAssignment::zero_complete(&net, &ids);

    // Before stabilization the detector under-reports: half the nodes are
    // missing one reliable neighbor (think: a link whose quality estimate
    // has not converged yet).
    let sparse = {
        let mut sets: Vec<std::collections::BTreeSet<u32>> =
            (0..n).map(|v| good.set(NodeId(v)).clone()).collect();
        for set in sets.iter_mut().skip(n / 2) {
            if let Some(&first) = set.iter().next() {
                set.remove(&first);
            }
        }
        LinkDetectorAssignment::from_sets(sets)
    };

    let cfg = CcdsConfig::new(n, net.max_degree_g(), 256);
    let probe = ContinuousCcds::new(&cfg, radio_sim::ProcessId::new(1).expect("nonzero"))?;
    let delta = probe.cycle_len();
    let stabilize_at = delta / 2;
    println!("cycle length δ_CDS = {delta} rounds; detector stabilizes at round {stabilize_at}");

    let dyn_det = DynamicDetector::new(vec![(1, sparse), (stabilize_at, good.clone())])?;
    let h = good.h_graph(&ids);
    let mut engine = EngineBuilder::new(net)
        .seed(5)
        .detector(dyn_det)
        .spawn(|info| ContinuousCcds::new(&cfg, info.id).expect("validated config"))?;

    // Theorem 8.1: solved by stabilization + 2δ.
    let deadline = stabilize_at + 2 * delta;
    engine.run_rounds(deadline + 1);
    let report = check_ccds(engine.net(), &h, &engine.outputs());
    println!(
        "at round {}: terminated = {}, connected = {}, dominating = {} (cycles completed: {})",
        engine.round(),
        report.terminated,
        report.connected,
        report.dominating,
        engine.procs()[0].cycles_completed(),
    );
    assert!(report.terminated && report.connected && report.dominating);
    println!("dynamic_links OK — recovered within 2 cycles of stabilization");
    Ok(())
}
