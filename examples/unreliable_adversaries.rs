//! How much do unreliable links hurt? The MIS algorithm under four
//! reach-set adversaries, from benign to adaptive-worst-case — correctness
//! holds under all of them (that is the Section 4 design goal); only the
//! constant factors degrade.
//!
//! ```text
//! cargo run -p radio-bench --example unreliable_adversaries --release
//! ```

use radio_sim::topology::{random_geometric, RandomGeometricConfig};
use radio_structures::params::MisParams;
use radio_structures::runner::{run_mis, AdversaryKind};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let mut cfg = RandomGeometricConfig::dense(64);
    cfg.gray_prob = 0.8; // a thick gray zone: plenty for the adversary
    let net = random_geometric(&cfg, &mut rng)?;
    println!(
        "network: n = {}, Δ = {}, unreliable edges = {} ({}% of all links)\n",
        net.n(),
        net.max_degree_g(),
        net.unreliable_edge_count(),
        100 * net.unreliable_edge_count() / net.g_prime().edge_count()
    );
    println!(
        "{:<16} {:>6} {:>14} {:>12} {:>12}",
        "adversary", "valid", "solve rounds", "collisions", "deliveries"
    );
    for kind in [
        AdversaryKind::ReliableOnly,
        AdversaryKind::Random { p: 0.5 },
        AdversaryKind::AllUnreliable,
        AdversaryKind::Collider,
    ] {
        let run = run_mis(&net, MisParams::default(), kind, 3);
        println!(
            "{:<16} {:>6} {:>14} {:>12} {:>12}",
            kind.name(),
            run.report.is_valid(),
            run.solve_round.map_or("—".to_string(), |r| r.to_string()),
            run.metrics.collisions,
            run.metrics.deliveries,
        );
        assert!(run.report.is_valid(), "MIS must survive {:?}", kind.name());
    }
    println!("\nunreliable_adversaries OK — correct under every adversary");
    Ok(())
}
