//! How much do unreliable links hurt? The MIS algorithm under four
//! reach-set adversaries, from benign to adaptive-worst-case — correctness
//! holds under all of them (that is the Section 4 design goal); only the
//! constant factors degrade.
//!
//! The same sweep then runs **declaratively**: a `ScenarioSpec` loaded
//! from a JSON file (pass a path to run your own; without one the example
//! writes its built-in spec to a temp file and loads that), expanded by
//! the sweep planner and executed through the parallel trial runner —
//! the `radio-lab` workflow in miniature. The spec carries an
//! **aggregate block**: instead of one raw row per record, the renderer
//! groups trials by adversary and reports mean solve rounds with a 95%
//! confidence interval — the statistics-over-trials shape every claim in
//! the dual-graph model needs (see `radio_bench::aggregate`). A final
//! pass streams the same grid in chunks through a record sink
//! (`radio_bench::sink`) and checks the folded table is byte-identical —
//! the bounded-memory pipeline behind `radio-lab --stream`.
//!
//! ```text
//! cargo run --example unreliable_adversaries --release
//! cargo run --example unreliable_adversaries --release -- my_spec.json
//! ```

use radio_bench::aggregate::{AggregateSpec, GroupKey, MetricSource, MetricSpec, Reduction};
use radio_bench::scenario::{
    render, run_spec, run_spec_streaming, RenderKind, ScenarioSpec, SeedPolicy, StopCondition,
    TopologyEntry, WorkloadEntry,
};
use radio_bench::sink::StreamAggregate;
use radio_sim::spec::TopologyKind;
use radio_sim::topology::{random_geometric, RandomGeometricConfig};
use radio_structures::params::MisParams;
use radio_structures::runner::{run_mis, AdversaryKind, AlgoKind};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let mut cfg = RandomGeometricConfig::dense(64);
    cfg.gray_prob = 0.8; // a thick gray zone: plenty for the adversary
    let net = random_geometric(&cfg, &mut rng)?;
    println!(
        "network: n = {}, Δ = {}, unreliable edges = {} ({}% of all links)\n",
        net.n(),
        net.max_degree_g(),
        net.unreliable_edge_count(),
        100 * net.unreliable_edge_count() / net.g_prime().edge_count()
    );
    println!(
        "{:<16} {:>6} {:>14} {:>12} {:>12}",
        "adversary", "valid", "solve rounds", "collisions", "deliveries"
    );
    for kind in [
        AdversaryKind::ReliableOnly,
        AdversaryKind::Random { p: 0.5 },
        AdversaryKind::AllUnreliable,
        AdversaryKind::Collider,
    ] {
        let run = run_mis(&net, MisParams::default(), kind, 3);
        println!(
            "{:<16} {:>6} {:>14} {:>12} {:>12}",
            kind.name(),
            run.report.is_valid(),
            run.solve_round.map_or("—".to_string(), |r| r.to_string()),
            run.metrics.collisions,
            run.metrics.deliveries,
        );
        assert!(run.report.is_valid(), "MIS must survive {:?}", kind.name());
    }
    // The declarative version: the sweep as data, loaded from a JSON file.
    let spec_path = match std::env::args().nth(1) {
        Some(path) => path,
        None => {
            let spec = ScenarioSpec {
                id: "ADV".to_string(),
                caption: "the sweep above as a declarative scenario: mean solve rounds \
                          ± 95% CI per adversary over 3 trials"
                    .to_string(),
                render: RenderKind::Aggregate,
                topologies: vec![TopologyEntry::seeded(
                    TopologyKind::GeometricDense { n: 48 },
                    13,
                )],
                adversaries: vec![
                    AdversaryKind::ReliableOnly,
                    AdversaryKind::Random { p: 0.5 },
                    AdversaryKind::AllUnreliable,
                    AdversaryKind::Collider,
                ],
                workloads: vec![WorkloadEntry::core(AlgoKind::Mis)],
                trials: 3,
                nest: radio_bench::scenario::NestOrder::TopologyMajor,
                seeds: SeedPolicy {
                    net_base: 13,
                    run_base: 3,
                },
                stop: StopCondition::Default,
                // The group-by block: one row per adversary, trials folded
                // into count / valid fraction / mean ± CI / worst case.
                aggregate: Some(AggregateSpec {
                    group_by: vec![GroupKey::Adversary],
                    metrics: vec![
                        MetricSpec::new(MetricSource::SolveRound, vec![Reduction::Count]),
                        MetricSpec::new(MetricSource::Valid, vec![Reduction::Frac]),
                        MetricSpec::new(
                            MetricSource::SolveRound,
                            vec![Reduction::Ci95, Reduction::Max],
                        ),
                        MetricSpec::new(MetricSource::Collisions, vec![Reduction::Mean]),
                    ],
                    slope: None,
                }),
            };
            let path = std::env::temp_dir().join("unreliable_adversaries_spec.json");
            std::fs::write(&path, serde_json::to_string_pretty(&spec)?)?;
            path.to_string_lossy().into_owned()
        }
    };
    let spec: ScenarioSpec = serde_json::from_str(&std::fs::read_to_string(&spec_path)?)?;
    println!(
        "\ndeclarative rerun from {spec_path}: {} grid cells",
        spec.grid_size()
    );
    let run = run_spec(&spec);
    println!("\n{}", render(&spec, &run).render());
    assert_eq!(run.records.len(), spec.grid_size());

    // The same sweep once more, **streamed**: the grid executes in
    // index-ordered chunks of 2 units and every record folds straight
    // into the aggregation accumulators — peak memory O(chunk), table
    // byte-identical to the materialized render above. This is what
    // `radio-lab --stream` does, and what lets sweeps scale to grids that
    // never fit in RAM.
    let mut agg = StreamAggregate::for_spec(&spec);
    let stats = run_spec_streaming(&spec, 2, &mut [&mut agg])?;
    let streamed = agg.table(&spec);
    assert_eq!(
        streamed.render(),
        render(&spec, &run).render(),
        "streamed fold must match the materialized table byte-for-byte"
    );
    println!(
        "streamed rerun: {} units, {} records, chunk = 2 — table byte-identical",
        stats.units, stats.records
    );

    println!("unreliable_adversaries OK — correct under every adversary");
    Ok(())
}
