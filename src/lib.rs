//! Umbrella crate for the *Structuring Unreliable Radio Networks*
//! reproduction workspace.
//!
//! The implementation lives in the member crates — [`radio_sim`] (the dual
//! graph simulator), [`radio_structures`] (MIS/CCDS algorithms),
//! [`hitting_games`] (the Ω(Δ) lower bound), [`radio_baselines`], and
//! [`radio_bench`] (the experiment harness). This crate exists to own the
//! workspace-level integration tests under `tests/` and the runnable
//! `examples/`, and re-exports the member crates for convenience.

#![forbid(unsafe_code)]

pub use hitting_games;
pub use radio_baselines;
pub use radio_bench;
pub use radio_sim;
pub use radio_structures;
